package replica

import (
	"fmt"
	"testing"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// TestDuplicateCommitsDropped pins the pending-map leak fix: commit
// events at or below the applied watermark — the replays a durable
// restart, a catch-up re-delivery or a Start adoption produce — must be
// dropped on entry, not parked in pending forever, and must not
// re-execute requests.
func TestDuplicateCommitsDropped(t *testing.T) {
	pool := core.NewRequestPool()
	r := New(0, &Counter{})
	var reqs []*message.Request
	for i := uint64(1); i <= 6; i++ {
		rq := req(i, nil)
		reqs = append(reqs, rq)
		pool.Add(rq)
	}
	r.HandleCommit(pool, commitEvent(1, reqs[0], reqs[1], reqs[2]))
	r.HandleCommit(pool, commitEvent(4, reqs[3], reqs[4], reqs[5]))
	applied, n := r.Applied()
	if applied != 6 || n != 6 {
		t.Fatalf("applied=%d n=%d, want 6/6", applied, n)
	}
	// Replay both events many times, as a restarted recorder stream would.
	for range 50 {
		r.HandleCommit(pool, commitEvent(1, reqs[0], reqs[1], reqs[2]))
		r.HandleCommit(pool, commitEvent(4, reqs[3], reqs[4], reqs[5]))
	}
	if got := r.PendingCount(); got != 0 {
		t.Fatalf("pending holds %d duplicate events; leak", got)
	}
	if applied, n = r.Applied(); applied != 6 || n != 6 {
		t.Fatalf("duplicates re-executed: applied=%d n=%d, want 6/6", applied, n)
	}
	// The counter state machine proves no re-execution: result of request
	// 6 is still "6".
	if res, ok := r.Result(reqs[5].ID()); !ok || string(res) != "6" {
		t.Fatalf("result of last request = %q ok=%v, want \"6\"", res, ok)
	}
}

// TestStalePendingSweptAfterGapFill: an event buffered behind a gap whose
// range is then covered by a wider adoption must not linger in pending.
func TestStalePendingSweptAfterGapFill(t *testing.T) {
	pool := core.NewRequestPool()
	r := New(0, Echo{})
	var reqs []*message.Request
	for i := uint64(1); i <= 4; i++ {
		rq := req(i, []byte{byte(i)})
		reqs = append(reqs, rq)
		pool.Add(rq)
	}
	// Arrives early, waits on the gap at seq 1-2.
	r.HandleCommit(pool, commitEvent(3, reqs[2], reqs[3]))
	if r.PendingCount() != 1 {
		t.Fatalf("pending = %d, want the gapped event", r.PendingCount())
	}
	// A wide event covering 1..4 (a Start adoption commits the whole
	// range) supersedes it.
	r.HandleCommit(pool, commitEvent(1, reqs...))
	if applied, _ := r.Applied(); applied != 4 {
		t.Fatalf("applied=%d, want 4", applied)
	}
	if got := r.PendingCount(); got != 0 {
		t.Fatalf("stale gap-filler not swept: pending = %d", got)
	}
}

// TestRetryAppliesWhenPayloadArrivesLate: a commit event can reach the
// replica before the request payload reaches the pool (the request
// committed through peers' acks). With no later commit to re-trigger the
// apply loop, Retry is what un-wedges the stream tail.
func TestRetryAppliesWhenPayloadArrivesLate(t *testing.T) {
	pool := core.NewRequestPool()
	r := New(0, Echo{})
	rq := req(1, []byte("late"))
	r.HandleCommit(pool, commitEvent(1, rq)) // payload not in the pool yet
	if applied, _ := r.Applied(); applied != 0 {
		t.Fatalf("applied %d without the payload", applied)
	}
	if r.PendingCount() != 1 {
		t.Fatalf("pending = %d, want the buffered event", r.PendingCount())
	}
	pool.Add(rq)
	r.Retry(pool)
	if applied, n := r.Applied(); applied != 1 || n != 1 {
		t.Fatalf("Retry did not apply: applied=%d n=%d", applied, n)
	}
	if r.PendingCount() != 0 {
		t.Fatalf("pending = %d after Retry, want 0", r.PendingCount())
	}
	if res, ok := r.Result(rq.ID()); !ok || string(res) != "late" {
		t.Fatalf("result = %q ok=%v after late payload", res, ok)
	}
}

// TestResultRetention bounds the results map at the retention watermark.
func TestResultRetention(t *testing.T) {
	pool := core.NewRequestPool()
	r := New(0, Echo{})
	r.SetResultRetention(10)
	for i := uint64(1); i <= 100; i++ {
		rq := req(i, []byte(fmt.Sprintf("p%d", i)))
		pool.Add(rq)
		r.HandleCommit(pool, commitEvent(types.Seq(i), rq))
	}
	if got := r.ResultCount(); got != 10 {
		t.Fatalf("results retained = %d, want 10", got)
	}
	// The newest results answer; the oldest are pruned.
	if _, ok := r.Result(req(100, nil).ID()); !ok {
		t.Fatal("newest result pruned")
	}
	if _, ok := r.Result(req(1, nil).ID()); ok {
		t.Fatal("oldest result survived the retention bound")
	}
	// Unlimited retention keeps everything.
	r2 := New(0, Echo{})
	for i := uint64(1); i <= 100; i++ {
		rq := req(200+i, nil)
		pool.Add(rq)
		r2.HandleCommit(pool, commitEvent(types.Seq(i), rq))
	}
	if got := r2.ResultCount(); got != 100 {
		t.Fatalf("unbounded replica retained %d results, want 100", got)
	}
}
