package replica

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// StateMachine is a deterministic service.
type StateMachine interface {
	// Apply executes one request payload and returns its result. Apply
	// must be deterministic: identical request sequences must produce
	// identical results on every replica.
	Apply(payload []byte) []byte
}

// Replica applies committed batches, in order, to a state machine. It is
// driven by the order process's OnCommit hook (which runs in the process's
// event loop) but is also safe for concurrent inspection from tests.
type Replica struct {
	node types.NodeID
	sm   StateMachine

	mu       sync.Mutex
	applied  types.Seq
	pending  map[types.Seq]core.CommitEvent // committed but waiting on payloads or order
	results  map[message.ReqID][]byte
	appliedN int
}

// New returns a replica wrapping sm for the given order process node.
func New(node types.NodeID, sm StateMachine) *Replica {
	return &Replica{
		node:    node,
		sm:      sm,
		pending: make(map[types.Seq]core.CommitEvent),
		results: make(map[message.ReqID][]byte),
	}
}

// HandleCommit consumes one commit event, resolving request payloads from
// the order process's pool. Batches may be applied only contiguously;
// commits arriving with a gap (possible across coordinator installs) wait
// in pending.
func (r *Replica) HandleCommit(pool *core.RequestPool, ev core.CommitEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending[ev.FirstSeq] = ev
	for {
		next, ok := r.pending[r.applied+1]
		if !ok {
			return
		}
		if !r.applyLocked(pool, next) {
			return
		}
		delete(r.pending, next.FirstSeq)
	}
}

// applyLocked applies one batch; it reports false if a payload is missing
// (the caller retries on a later commit — clients multicast requests to
// all nodes, so the payload eventually arrives with a later event).
func (r *Replica) applyLocked(pool *core.RequestPool, ev core.CommitEvent) bool {
	for _, e := range ev.Entries {
		if _, ok := pool.Get(e.Req); !ok {
			return false
		}
	}
	for _, e := range ev.Entries {
		req, _ := pool.Get(e.Req)
		result := r.sm.Apply(req.Payload)
		r.results[e.Req] = result
		r.appliedN++
	}
	r.applied = ev.LastSeq
	return true
}

// Result returns the stored result for a request.
func (r *Replica) Result(id message.ReqID) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[id]
	return res, ok
}

// Applied returns the highest applied sequence number and the number of
// requests executed.
func (r *Replica) Applied() (types.Seq, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.appliedN
}

// --- example state machines ---

// KVOp codes for the KVStore wire format.
const (
	KVSet byte = 1
	KVGet byte = 2
	KVDel byte = 3
)

// EncodeKV builds a KVStore command: op, key and (for set) value.
func EncodeKV(op byte, key, value string) []byte {
	out := []byte{op, byte(len(key))}
	out = append(out, key...)
	out = append(out, value...)
	return out
}

// KVStore is a replicated string key-value store.
type KVStore struct {
	data map[string]string
}

var _ StateMachine = (*KVStore)(nil)

// NewKVStore returns an empty store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string]string)} }

// Apply implements StateMachine.
func (s *KVStore) Apply(payload []byte) []byte {
	if len(payload) < 2 {
		return []byte("ERR malformed")
	}
	op, klen := payload[0], int(payload[1])
	if len(payload) < 2+klen {
		return []byte("ERR malformed")
	}
	key := string(payload[2 : 2+klen])
	rest := payload[2+klen:]
	switch op {
	case KVSet:
		s.data[key] = string(rest)
		return []byte("OK")
	case KVGet:
		if v, ok := s.data[key]; ok {
			return []byte(v)
		}
		return []byte("NOT_FOUND")
	case KVDel:
		delete(s.data, key)
		return []byte("OK")
	default:
		return []byte(fmt.Sprintf("ERR op %d", op))
	}
}

// Counter is a state machine whose every request increments a counter and
// returns its new value.
type Counter struct {
	n int64
}

var _ StateMachine = (*Counter)(nil)

// Apply implements StateMachine.
func (c *Counter) Apply([]byte) []byte {
	c.n++
	return []byte(fmt.Sprintf("%d", c.n))
}

// Echo returns each payload unchanged (useful for tests comparing
// cross-replica results).
type Echo struct{}

var _ StateMachine = Echo{}

// Apply implements StateMachine.
func (Echo) Apply(payload []byte) []byte { return bytes.Clone(payload) }
