package replica

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/obs"
	"github.com/sof-repro/sof/internal/types"
)

// StateMachine is a deterministic service.
type StateMachine interface {
	// Apply executes one request payload and returns its result. Apply
	// must be deterministic: identical request sequences must produce
	// identical results on every replica.
	Apply(payload []byte) []byte
}

// Replica applies committed batches, in order, to a state machine. It is
// driven by the order process's OnCommit hook (which runs in the process's
// event loop) but is also safe for concurrent inspection from tests.
type Replica struct {
	node types.NodeID
	sm   StateMachine

	mu       sync.Mutex
	applied  types.Seq
	pending  map[types.Seq]core.CommitEvent // committed but waiting on payloads or order
	results  map[message.ReqID][]byte
	appliedN int

	// retention bounds the results map (0 = unlimited): resultLog records
	// apply order (head-indexed FIFO) and results older than the newest
	// `retention` applications are pruned. Without the bound a long-lived
	// replica retains one result per request ever executed.
	retention  int
	resultLog  []message.ReqID
	resultHead int

	retries atomic.Uint64 // Retry() drains (outside mu: drains are concurrent)
}

// New returns a replica wrapping sm for the given order process node.
func New(node types.NodeID, sm StateMachine) *Replica {
	return &Replica{
		node:    node,
		sm:      sm,
		pending: make(map[types.Seq]core.CommitEvent),
		results: make(map[message.ReqID][]byte),
	}
}

// SetResultRetention bounds how many execution results the replica
// retains for Result lookups (0 = unlimited). Results beyond the bound
// are pruned oldest-first; callers that need a result must read it within
// `n` subsequent applications, which mirrors the recorder's bounded
// commit retention.
func (r *Replica) SetResultRetention(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retention = n
	r.pruneResultsLocked()
}

// HandleCommit consumes one commit event, resolving request payloads from
// the order process's pool. Batches may be applied only contiguously;
// commits arriving with a gap (possible across coordinator installs) wait
// in pending. Events at or below the applied watermark — duplicates from
// a durable restart's replay, catch-up re-delivery, or Start adoption —
// are dropped on entry: stored under their FirstSeq they would never
// match the applied+1 lookup and would sit in pending forever.
func (r *Replica) HandleCommit(pool *core.RequestPool, ev core.CommitEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev.LastSeq <= r.applied {
		return // duplicate of an already-applied range
	}
	r.pending[ev.FirstSeq] = ev
	r.advanceLocked(pool)
}

// Retry re-attempts contiguous application of buffered commit events.
// Payloads race the commit stream: a request can commit (through peers'
// acks) before the client's own copy reaches this node's pool, and if no
// later commit follows, the buffered event would wedge until one does.
// Drains call Retry so the tail of the stream applies as soon as its
// payloads arrive.
func (r *Replica) Retry(pool *core.RequestPool) {
	r.retries.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advanceLocked(pool)
}

// RegisterMetrics attaches func-backed gauges over the replica's existing
// thread-safe accessors — the apply path is untouched; values are read
// only when the registry is scraped.
func (r *Replica) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("sof_replica_applied_seq",
		"Highest sequence number applied to the state machine.",
		func() float64 { seq, _ := r.Applied(); return float64(seq) }, labels...)
	reg.GaugeFunc("sof_replica_pending_events",
		"Commit events buffered awaiting contiguous application.",
		func() float64 { return float64(r.PendingCount()) }, labels...)
	reg.GaugeFunc("sof_replica_results_retained",
		"Execution results retained for client Result lookups.",
		func() float64 { return float64(r.ResultCount()) }, labels...)
	reg.CounterFunc("sof_replica_retries_total",
		"Retry drains re-attempting application after late payload arrival.",
		func() uint64 { return r.retries.Load() }, labels...)
}

// advanceLocked applies buffered events contiguously and sweeps entries
// overtaken by the watermark.
func (r *Replica) advanceLocked(pool *core.RequestPool) {
	advanced := false
	for {
		next, ok := r.pending[r.applied+1]
		if !ok {
			break
		}
		if !r.applyLocked(pool, next) {
			break
		}
		delete(r.pending, next.FirstSeq)
		advanced = true
	}
	if advanced {
		// Entries overtaken by the watermark (stale gap-fillers) can never
		// match the applied+1 lookup again; sweep them so pending stays
		// bounded by the live gap, not by history.
		for seq, p := range r.pending {
			if p.LastSeq <= r.applied {
				delete(r.pending, seq)
			}
		}
	}
}

// applyLocked applies one batch; it reports false if a payload is missing
// (the caller retries on a later commit — clients multicast requests to
// all nodes, so the payload eventually arrives with a later event).
func (r *Replica) applyLocked(pool *core.RequestPool, ev core.CommitEvent) bool {
	// One pool pass: collect the payload sources while checking presence,
	// so the apply path takes N pool-lock acquisitions, not 2N.
	reqs := make([]*message.Request, len(ev.Entries))
	for i, e := range ev.Entries {
		req, ok := pool.Get(e.Req)
		if !ok {
			return false
		}
		reqs[i] = req
	}
	for i, e := range ev.Entries {
		result := r.sm.Apply(reqs[i].Payload)
		if _, dup := r.results[e.Req]; !dup {
			r.resultLog = append(r.resultLog, e.Req)
		}
		r.results[e.Req] = result
		r.appliedN++
	}
	r.applied = ev.LastSeq
	r.pruneResultsLocked()
	return true
}

// pruneResultsLocked enforces the result-retention bound.
func (r *Replica) pruneResultsLocked() {
	if r.retention <= 0 {
		return
	}
	for len(r.resultLog)-r.resultHead > r.retention {
		delete(r.results, r.resultLog[r.resultHead])
		r.resultHead++
	}
	if r.resultHead > 0 && r.resultHead*2 >= len(r.resultLog) {
		n := copy(r.resultLog, r.resultLog[r.resultHead:])
		r.resultLog = r.resultLog[:n]
		r.resultHead = 0
	}
}

// Result returns the stored result for a request.
func (r *Replica) Result(id message.ReqID) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[id]
	return res, ok
}

// PendingCount reports how many commit events await contiguous
// application (leak-regression tests pin that duplicates do not
// accumulate here).
func (r *Replica) PendingCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// ResultCount reports how many execution results are retained.
func (r *Replica) ResultCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.results)
}

// Applied returns the highest applied sequence number and the number of
// requests executed.
func (r *Replica) Applied() (types.Seq, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied, r.appliedN
}

// --- example state machines ---

// KVOp codes for the KVStore wire format.
const (
	KVSet byte = 1
	KVGet byte = 2
	KVDel byte = 3
)

// EncodeKV builds a KVStore command: op, key and (for set) value.
func EncodeKV(op byte, key, value string) []byte {
	out := []byte{op, byte(len(key))}
	out = append(out, key...)
	out = append(out, value...)
	return out
}

// KVStore is a replicated string key-value store.
type KVStore struct {
	data map[string]string
}

var _ StateMachine = (*KVStore)(nil)

// NewKVStore returns an empty store.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string]string)} }

// Apply implements StateMachine.
func (s *KVStore) Apply(payload []byte) []byte {
	if len(payload) < 2 {
		return []byte("ERR malformed")
	}
	op, klen := payload[0], int(payload[1])
	if len(payload) < 2+klen {
		return []byte("ERR malformed")
	}
	key := string(payload[2 : 2+klen])
	rest := payload[2+klen:]
	switch op {
	case KVSet:
		s.data[key] = string(rest)
		return []byte("OK")
	case KVGet:
		if v, ok := s.data[key]; ok {
			return []byte(v)
		}
		return []byte("NOT_FOUND")
	case KVDel:
		delete(s.data, key)
		return []byte("OK")
	default:
		return []byte(fmt.Sprintf("ERR op %d", op))
	}
}

// Counter is a state machine whose every request increments a counter and
// returns its new value.
type Counter struct {
	n int64
}

var _ StateMachine = (*Counter)(nil)

// Apply implements StateMachine.
func (c *Counter) Apply([]byte) []byte {
	c.n++
	return []byte(fmt.Sprintf("%d", c.n))
}

// Echo returns each payload unchanged (useful for tests comparing
// cross-replica results).
type Echo struct{}

var _ StateMachine = Echo{}

// Apply implements StateMachine.
func (Echo) Apply(payload []byte) []byte { return bytes.Clone(payload) }
