// Package replica is the service execution layer above the order
// protocols: a deterministic state machine applied to the committed
// request sequence (the "s1..s(2f+1)" boxes of Figure 1). The order
// protocols guarantee every non-faulty replica sees the same sequence;
// this package turns that sequence into application state and results.
package replica
