package stats

import (
	"fmt"
	"sort"
	"time"
)

// Summary describes a sample of durations.
type Summary struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
}

// Summarize computes a Summary; an empty sample yields a zero Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, s := range sorted {
		total += s
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  total / time.Duration(len(sorted)),
		P50:   percentile(sorted, 0.50),
		P90:   percentile(sorted, 0.90),
		P99:   percentile(sorted, 0.99),
	}
}

// percentile returns the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Rate expresses an event count over a window as events/second.
func Rate(count int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// Sampler accumulates duration samples and memoizes their Summary, so that
// polling the summary during a run (the recorder is asked for it every few
// milliseconds by measurement loops) costs O(1) whenever no new sample has
// arrived, instead of re-sorting the full sample every call.
// The zero value is ready to use. Not safe for concurrent use; callers
// (the harness Recorder) synchronise externally.
type Sampler struct {
	samples []time.Duration
	dirty   bool
	cache   Summary
}

// Add appends one sample.
func (s *Sampler) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.dirty = true
}

// Count returns the number of samples.
func (s *Sampler) Count() int { return len(s.samples) }

// Reset discards all samples, keeping the backing array.
func (s *Sampler) Reset() {
	s.samples = s.samples[:0]
	s.dirty = false
	s.cache = Summary{}
}

// Summary returns the memoized summary, recomputing it only if samples were
// added since the last call.
func (s *Sampler) Summary() Summary {
	if s.dirty {
		s.cache = Summarize(s.samples)
		s.dirty = false
	}
	return s.cache
}
