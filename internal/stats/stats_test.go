package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if got := s.String(); got != "no samples" {
		t.Errorf("String() = %q", got)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{42 * time.Millisecond})
	if s.Count != 1 || s.Min != 42*time.Millisecond || s.Max != 42*time.Millisecond ||
		s.Mean != 42*time.Millisecond || s.P50 != 42*time.Millisecond {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	samples := make([]time.Duration, 0, 100)
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	// Shuffle: Summarize must not rely on input order (and must not
	// mutate its input).
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	before := make([]time.Duration, len(samples))
	copy(before, samples)

	s := Summarize(samples)
	if s.Count != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", s.Mean)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 52*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P90 < 89*time.Millisecond || s.P90 > 92*time.Millisecond {
		t.Errorf("p90 = %v", s.P90)
	}
	for i := range samples {
		if samples[i] != before[i] {
			t.Fatal("Summarize mutated its input")
		}
	}
	if out := s.String(); !strings.Contains(out, "n=100") {
		t.Errorf("String() = %q", out)
	}
}

// Property: min <= p50 <= p90 <= p99 <= max and min <= mean <= max.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		s := Summarize(samples)
		sorted := append([]time.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return s.Count == len(samples) &&
			s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, time.Second); got != 100 {
		t.Errorf("Rate(100, 1s) = %v", got)
	}
	if got := Rate(50, 2*time.Second); got != 25 {
		t.Errorf("Rate(50, 2s) = %v", got)
	}
	if got := Rate(10, 0); got != 0 {
		t.Errorf("Rate(_, 0) = %v", got)
	}
	if got := Rate(10, -time.Second); got != 0 {
		t.Errorf("Rate(_, <0) = %v", got)
	}
}

func TestSamplerMemoizesSummary(t *testing.T) {
	var s Sampler
	if got := s.Summary(); got.Count != 0 {
		t.Errorf("empty sampler summary = %+v", got)
	}
	s.Add(10 * time.Millisecond)
	s.Add(30 * time.Millisecond)
	first := s.Summary()
	if first.Count != 2 || first.Mean != 20*time.Millisecond {
		t.Errorf("summary = %+v, want n=2 mean=20ms", first)
	}
	// Repeated calls with no new samples return the identical value and
	// must not allocate (the memoization the benchmark measures).
	if allocs := testing.AllocsPerRun(100, func() { _ = s.Summary() }); allocs != 0 {
		t.Errorf("memoized Summary allocates %v per call", allocs)
	}
	s.Add(50 * time.Millisecond)
	if got := s.Summary(); got.Count != 3 || got.Max != 50*time.Millisecond {
		t.Errorf("summary after new sample = %+v", got)
	}
	s.Reset()
	if got := s.Summary(); got.Count != 0 {
		t.Errorf("summary after reset = %+v", got)
	}
}

// BenchmarkSamplerSummaryPolling measures polling a memoized summary over a
// large sample; BenchmarkSummarize is the unmemoized comparison point.
func BenchmarkSamplerSummaryPolling(b *testing.B) {
	var s Sampler
	for i := 0; i < 100_000; i++ {
		s.Add(time.Duration(i%977) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Summary().Count == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkSummarize sorts the full sample on every call (what polling a
// summary used to cost before Sampler memoization).
func BenchmarkSummarize(b *testing.B) {
	samples := make([]time.Duration, 100_000)
	for i := range samples {
		samples[i] = time.Duration(i%977) * time.Microsecond
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Summarize(samples).Count == 0 {
			b.Fatal("no samples")
		}
	}
}
