// Package stats provides the small latency/throughput statistics used by
// the benchmark harness: summaries with percentiles, and rate counters.
package stats
