package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/obs"
)

// LSN is the 1-based position of a record in the log's append stream. 0
// means "no record". LSNs are assigned densely at Append and survive
// restarts: the i-th record ever appended has LSN i whether or not its
// segment has since been pruned.
type LSN uint64

const (
	// segMagic opens every segment file, followed by the segment's first
	// LSN; a file that does not start with it is not replayed.
	segMagic = uint64(0x534f_4657_414c_3031) // "SOFWAL01"
	// segHeaderLen is magic (8) + first LSN (8).
	segHeaderLen = 16
	// recHeaderLen is payload length (4) + CRC-32C (4).
	recHeaderLen = 8
	// MaxRecord bounds one record's payload, matching the transport's
	// frame bound: anything larger on disk is corruption, not data.
	MaxRecord = 16 << 20
	// DefaultSegmentBytes is the rotation threshold when Options leaves it
	// zero.
	DefaultSegmentBytes = 4 << 20
	// DefaultSyncInterval is the group-commit interval when Options leaves
	// it zero.
	DefaultSyncInterval = 10 * time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Dir is the directory holding the segment files; it is created if
	// missing. One Log owns one directory.
	Dir string
	// SegmentBytes is the rotation threshold: a record that would push the
	// active segment past it opens a new segment (default
	// DefaultSegmentBytes). Records larger than the threshold still fit —
	// a segment always holds at least one record.
	SegmentBytes int
	// SyncInterval is the group-commit period: appends are buffered and a
	// background flusher fsyncs every interval while there is unsynced
	// data (default DefaultSyncInterval). Negative disables the
	// background flusher entirely — only explicit Sync calls reach disk —
	// which tests use to control durability points exactly.
	SyncInterval time.Duration
	// Logger receives recovery diagnostics (torn tails truncated, orphan
	// segments dropped). nil discards them.
	Logger *log.Logger
	// Metrics, when non-nil, registers the log's instruments (fsync
	// latency histogram, segment/LSN gauges, append/sync counters) under
	// MetricsLabels. Counters and gauges are func-backed over the log's
	// existing mutex-guarded state, read only at scrape time; only the
	// fsync histogram touches the sync path (two atomic ops per fsync).
	Metrics       *obs.Registry
	MetricsLabels []obs.Label
}

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	// Appended counts records appended this incarnation.
	Appended uint64
	// Syncs counts fsync batches (group commits).
	Syncs uint64
	// Recovered is how many records the Open scan found intact.
	Recovered uint64
	// TruncatedBytes is how many torn-tail bytes Open discarded.
	TruncatedBytes int64
	// DroppedSegments counts segments discarded at Open because they
	// followed a torn or discontinuous segment.
	DroppedSegments int
	// PrunedSegments counts segments removed by TruncateBefore.
	PrunedSegments int
	// Segments is the current number of live segment files.
	Segments int
}

// segment describes one on-disk segment file.
type segment struct {
	path  string
	first LSN // LSN of the segment's first record
	last  LSN // LSN of its last record; first-1 when empty
	bytes int64
}

// Log is an append-only, segmented, CRC-checked record log with batched
// fsync. Appends are buffered in user space and reach disk on the next
// group commit (the background flusher's tick, or an explicit Sync); a
// crash loses at most the records appended since the last sync, and a torn
// tail from a mid-write crash is truncated away on the next Open, so the
// recovered log is always a clean prefix of what was appended.
//
// All methods are safe for concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	segs     []segment // closed segments, ascending; active segment is last
	f        *os.File  // active segment file
	w        *bufio.Writer
	next     LSN // LSN the next Append assigns
	synced   LSN // highest LSN known durable
	flushed  LSN // highest LSN pushed to the OS (>= synced)
	closed   bool
	crashing bool
	stats    Stats
	hdrBuf   [recHeaderLen]byte
	fsyncH   *obs.Histogram // nil-safe: no-op when Options.Metrics was nil

	flusherStop chan struct{}
	flusherDone chan struct{}
}

// Open opens (creating if needed) the log in opts.Dir, scanning existing
// segments and truncating any torn tail so the log ends at the last intact
// record. The returned log is ready for Append; use Replay to read the
// recovered records.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opts.SyncInterval > 0 {
		l.flusherStop = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flusher()
	}
	l.registerMetrics()
	return l, nil
}

// registerMetrics attaches the log's instruments to Options.Metrics.
// Everything but the fsync histogram is func-backed over the log's
// mutex-guarded state, so the append path pays nothing.
func (l *Log) registerMetrics() {
	r, labels := l.opts.Metrics, l.opts.MetricsLabels
	if r == nil {
		return
	}
	l.fsyncH = r.Histogram("sof_wal_fsync_seconds",
		"Latency of WAL fsync batches (group commits).",
		obs.DefBuckets(), labels...)
	r.CounterFunc("sof_wal_appends_total",
		"Records appended to the WAL this incarnation.",
		func() uint64 { return l.Stats().Appended }, labels...)
	r.CounterFunc("sof_wal_syncs_total",
		"WAL fsync batches (group commits).",
		func() uint64 { return l.Stats().Syncs }, labels...)
	r.GaugeFunc("sof_wal_segments",
		"Live WAL segment files on disk.",
		func() float64 { return float64(l.Stats().Segments) }, labels...)
	r.GaugeFunc("sof_wal_synced_lsn",
		"Highest WAL LSN known durable.",
		func() float64 { return float64(l.SyncedLSN()) }, labels...)
	r.GaugeFunc("sof_wal_unsynced_records",
		"Appended records not yet fsynced (durability lag).",
		func() float64 {
			l.mu.Lock()
			lag := l.next - 1 - l.synced
			l.mu.Unlock()
			return float64(lag)
		}, labels...)
}

func (l *Log) logf(format string, args ...any) {
	if l.opts.Logger != nil {
		l.opts.Logger.Printf("wal %s: %s", l.opts.Dir, fmt.Sprintf(format, args...))
	}
}

// scan reads the segment directory, verifies every record and truncates
// the log at the first sign of a torn write: a short or CRC-failing record
// ends its segment there, and any later segment (which can only exist if
// the directory is inconsistent — rotation syncs the old segment before
// opening a new one) is dropped, so recovery always yields a clean prefix.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".seg" {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(l.opts.Dir, e.Name())})
	}
	// Order by the first LSN encoded in the filename; files whose names do
	// not parse are ignored (never deleted — they are not ours).
	parsed := segs[:0]
	for _, s := range segs {
		var first uint64
		if _, err := fmt.Sscanf(filepath.Base(s.path), "%016x.seg", &first); err == nil {
			s.first = LSN(first)
			parsed = append(parsed, s)
		} else {
			l.logf("ignoring unrecognised file %s", filepath.Base(s.path))
		}
	}
	segs = parsed
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	next := LSN(1)
	var live []segment
	torn := false
	for i := range segs {
		s := &segs[i]
		if torn || (len(live) > 0 && s.first != next) {
			// Orphan: follows a torn segment or leaves an LSN gap. Keep
			// the prefix property by dropping it.
			l.logf("dropping orphan segment %s", filepath.Base(s.path))
			_ = os.Remove(s.path)
			l.stats.DroppedSegments++
			continue
		}
		n, size, ok, err := l.scanSegment(s)
		if err != nil {
			return err
		}
		if len(live) == 0 {
			// The first live segment may start beyond LSN 1 (older ones
			// were pruned); later segments were contiguity-checked above.
			next = s.first
		}
		s.last = s.first + LSN(n) - 1
		s.bytes = size
		next = s.last + 1
		live = append(live, *s)
		l.stats.Recovered += n
		if !ok {
			torn = true
		}
	}
	l.segs = live
	l.next = next
	l.synced = next - 1
	l.flushed = next - 1
	return nil
}

// scanSegment verifies one segment, truncating it at the first torn or
// corrupt record. It returns the number of intact records, the resulting
// file size, and ok=false if a truncation happened.
func (l *Log) scanSegment(s *segment) (records uint64, size int64, ok bool, err error) {
	f, err := os.OpenFile(s.path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil ||
		binary.BigEndian.Uint64(hdr[:8]) != segMagic ||
		LSN(binary.BigEndian.Uint64(hdr[8:])) != s.first {
		// Headerless or mislabelled segment: nothing in it is trustworthy.
		l.logf("truncating segment %s: bad header", filepath.Base(s.path))
		if err := f.Truncate(0); err != nil {
			return 0, 0, false, fmt.Errorf("wal: %w", err)
		}
		// Rewrite a clean header so the segment can keep serving as the
		// active one.
		if err := writeSegHeader(f, s.first); err != nil {
			return 0, 0, false, err
		}
		return 0, segHeaderLen, false, nil
	}
	offset := int64(segHeaderLen)
	buf := make([]byte, 0, 4096)
	for {
		var rh [recHeaderLen]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err == io.EOF {
				return records, offset, true, nil
			}
			break // short header: torn tail
		}
		n := binary.BigEndian.Uint32(rh[:4])
		if n == 0 || n > MaxRecord {
			break
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			break // short payload: torn tail
		}
		if crc32.Checksum(buf, crcTable) != binary.BigEndian.Uint32(rh[4:]) {
			break // corrupt payload
		}
		offset += recHeaderLen + int64(n)
		records++
	}
	truncated := int64(0)
	if fi, err := f.Stat(); err == nil {
		truncated = fi.Size() - offset
	}
	l.logf("truncating %d torn byte(s) from segment %s after %d intact record(s)",
		truncated, filepath.Base(s.path), records)
	l.stats.TruncatedBytes += truncated
	if err := f.Truncate(offset); err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	return records, offset, false, nil
}

func writeSegHeader(f *os.File, first LSN) error {
	var hdr [segHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[:8], segMagic)
	binary.BigEndian.PutUint64(hdr[8:], uint64(first))
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// openActive opens the last live segment for appending (creating the first
// segment of an empty log), called with no lock needed (Open only).
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		return l.newSegment(l.next)
	}
	s := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// newSegment creates and syncs a fresh segment whose first record will be
// lsn, and fsyncs the directory so the file itself survives a crash.
// Called with l.mu held (or before the log is shared).
func (l *Log) newSegment(first LSN) error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("%016x.seg", uint64(first)))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := writeSegHeader(f, first); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if dir, err := os.Open(l.opts.Dir); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	l.segs = append(l.segs, segment{path: path, first: first, last: first - 1, bytes: segHeaderLen})
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// Append buffers one record and returns its LSN. The record is durable
// only after the next group commit (background flush or explicit Sync);
// Append itself never blocks on the disk unless a segment rotates.
func (l *Log) Append(rec []byte) (LSN, error) {
	if len(rec) == 0 || len(rec) > MaxRecord {
		return 0, fmt.Errorf("wal: record length %d outside (0, %d]", len(rec), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	active := &l.segs[len(l.segs)-1]
	if active.bytes > segHeaderLen && active.bytes+recHeaderLen+int64(len(rec)) > int64(l.opts.SegmentBytes) {
		if err := l.rotate(); err != nil {
			return 0, err
		}
		active = &l.segs[len(l.segs)-1]
	}
	binary.BigEndian.PutUint32(l.hdrBuf[:4], uint32(len(rec)))
	binary.BigEndian.PutUint32(l.hdrBuf[4:], crc32.Checksum(rec, crcTable))
	if _, err := l.w.Write(l.hdrBuf[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(rec); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	lsn := l.next
	l.next++
	active.last = lsn
	active.bytes += recHeaderLen + int64(len(rec))
	l.stats.Appended++
	return lsn, nil
}

// rotate seals the active segment (flush + fsync) and opens the next one.
// Called with l.mu held.
func (l *Log) rotate() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.newSegment(l.next)
}

// Sync forces a group commit: everything appended so far is flushed and
// fsynced before it returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.synced == l.next-1 {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.flushed = l.next - 1
	var start time.Time
	if l.fsyncH != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.fsyncH != nil {
		l.fsyncH.ObserveDuration(time.Since(start))
	}
	l.synced = l.next - 1
	l.stats.Syncs++
	return nil
}

// flusher is the group-commit loop: one fsync per SyncInterval while there
// is unsynced data, so the hot path never waits on the disk.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.syncLocked(); err != nil {
					l.logf("background sync: %v", err)
				}
			}
			l.mu.Unlock()
		case <-l.flusherStop:
			return
		}
	}
}

// TruncateBefore removes whole segments every record of which is below
// lsn. The active segment is never removed, so the log always retains its
// tail; partial segments are kept (pruning is a space bound, not an exact
// cut).
func (l *Log) TruncateBefore(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 1 && l.segs[0].last < lsn {
		if err := os.Remove(l.segs[0].path); err != nil {
			l.logf("pruning %s: %v", filepath.Base(l.segs[0].path), err)
			return
		}
		l.segs = l.segs[1:]
		l.stats.PrunedSegments++
	}
}

// PrunableSegments reports how many whole segments TruncateBefore(lsn)
// would remove, so callers can avoid checkpoint work when pruning would
// reclaim nothing.
func (l *Log) PrunableSegments(lsn LSN) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := 0; i < len(l.segs)-1 && l.segs[i].last < lsn; i++ {
		n++
	}
	return n
}

// OldestLSN returns the LSN of the oldest record still on disk (next
// assigned LSN if the log is empty).
func (l *Log) OldestLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segs {
		if s.last >= s.first {
			return s.first
		}
	}
	return l.next
}

// NextLSN returns the LSN the next Append will assign.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// SyncedLSN returns the highest LSN known durable: records at or below it
// have been fsynced and survive a crash. Callers that must only act on
// durable state (e.g. announcing a checkpoint watermark to peers who will
// prune history behind it) compare their record's LSN against it.
func (l *Log) SyncedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Segments = len(l.segs)
	return st
}

// Replay invokes fn for every record with LSN >= from, in order, reading
// from disk (buffered appends are flushed first so the replay sees them).
// fn returning an error stops the replay and returns that error. Replay
// may run concurrently with appends; records appended after it starts are
// not guaranteed to be visited.
func (l *Log) Replay(from LSN, fn func(lsn LSN, rec []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: %w", err)
	}
	l.flushed = l.next - 1
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()

	buf := make([]byte, 0, 4096)
	for _, s := range segs {
		if s.last < from || s.last < s.first {
			continue
		}
		if err := replaySegment(s, from, &buf, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment reads one segment's records, invoking fn for those >= from.
// The record slice passed to fn is reused between calls; fn must copy what
// it retains.
func replaySegment(s segment, from LSN, buf *[]byte, fn func(lsn LSN, rec []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("wal: replaying %s: %w", filepath.Base(s.path), err)
	}
	for lsn := s.first; lsn <= s.last; lsn++ {
		var rh [recHeaderLen]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			return fmt.Errorf("wal: replaying %s at %d: %w", filepath.Base(s.path), lsn, err)
		}
		n := binary.BigEndian.Uint32(rh[:4])
		if n == 0 || n > MaxRecord {
			return fmt.Errorf("wal: replaying %s at %d: bad record length %d", filepath.Base(s.path), lsn, n)
		}
		if cap(*buf) < int(n) {
			*buf = make([]byte, n)
		}
		rec := (*buf)[:n]
		if _, err := io.ReadFull(br, rec); err != nil {
			return fmt.Errorf("wal: replaying %s at %d: %w", filepath.Base(s.path), lsn, err)
		}
		if crc32.Checksum(rec, crcTable) != binary.BigEndian.Uint32(rh[4:]) {
			return fmt.Errorf("wal: replaying %s at %d: CRC mismatch", filepath.Base(s.path), lsn)
		}
		if lsn < from {
			continue
		}
		if err := fn(lsn, rec); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and fsyncs everything appended, stops the background
// flusher and closes the active segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.stopFlusher()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	return err
}

// Crash simulates a process crash for tests: the log is closed WITHOUT
// flushing user-space buffers, so records appended since the last group
// commit are lost exactly as they would be when the process dies.
func (l *Log) Crash() {
	l.stopFlusher()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	// Drop the bufio contents on the floor; close the fd without syncing.
	_ = l.f.Close()
}

func (l *Log) stopFlusher() {
	l.mu.Lock()
	stop, done := l.flusherStop, l.flusherDone
	if l.crashing || stop == nil {
		l.mu.Unlock()
		return
	}
	l.crashing = true
	l.mu.Unlock()
	close(stop)
	<-done
}
