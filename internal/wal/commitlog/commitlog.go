// Package commitlog persists the measurement recorder's commit stream in
// a wal.Log, so that (a) CommitsSince cursors that have fallen below the
// in-memory retention ring are served from disk instead of being reported
// as dropped, and (b) commit history — the committed-request index
// included — survives a process crash and restart.
//
// Every record is exactly one commit event, appended in stream order, so
// record LSNs and stream positions stay aligned: the event at stream
// position p lives at LSN p+1. The position is nevertheless embedded in
// each record and verified on read, so a mismatch is detected rather than
// silently misattributed. Pruning follows the replica-drain watermark:
// once every replay consumer has drained past a position (and the
// operator opted into bounded retention), the segments wholly below it
// are unlinked.
package commitlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/obs"
	"github.com/sof-repro/sof/internal/types"
	"github.com/sof-repro/sof/internal/wal"
)

// Options configures a Store.
type Options struct {
	// Dir is the log directory.
	Dir string
	// SyncInterval is the group-commit period (the runtime passes its
	// batching interval). Negative disables background sync (tests).
	SyncInterval time.Duration
	// SegmentBytes overrides the wal segment size (0 = wal default).
	SegmentBytes int
	// Logger receives recovery and append diagnostics.
	Logger *log.Logger
	// Metrics registers the underlying wal.Log's instruments, tagged
	// wal="commit" on top of MetricsLabels. nil disables.
	Metrics       *obs.Registry
	MetricsLabels []obs.Label
}

// Store is a durable commit stream. It is safe for concurrent use.
type Store struct {
	opts Options

	mu           sync.Mutex
	log          *wal.Log
	count        uint64 // next stream position (== events ever appended)
	buf          []byte // scratch encode buffer
	maxClientSeq map[types.NodeID]uint64
}

// Open opens (creating if needed) the commit store and recovers the
// persisted stream: its length and the highest ClientSeq seen per client
// (so a restarted deployment's clients do not reuse request IDs that
// committed in a previous incarnation).
func Open(opts Options) (*Store, error) {
	l, err := wal.Open(wal.Options{
		Dir:           opts.Dir,
		SegmentBytes:  opts.SegmentBytes,
		SyncInterval:  opts.SyncInterval,
		Logger:        opts.Logger,
		Metrics:       opts.Metrics,
		MetricsLabels: append(append([]obs.Label{}, opts.MetricsLabels...), obs.L("wal", "commit")),
	})
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, log: l, maxClientSeq: make(map[types.NodeID]uint64)}
	err = l.Replay(0, func(lsn wal.LSN, rec []byte) error {
		pos, ev, err := decodeEvent(rec)
		if err != nil {
			return fmt.Errorf("commitlog: record %d: %w", lsn, err)
		}
		if pos != uint64(lsn)-1 {
			return fmt.Errorf("commitlog: record %d carries stream position %d", lsn, pos)
		}
		s.count = pos + 1
		for i := range ev.Entries {
			req := ev.Entries[i].Req
			if req.ClientSeq > s.maxClientSeq[req.Client] {
				s.maxClientSeq[req.Client] = req.ClientSeq
			}
		}
		return nil
	})
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	// An empty-but-pruned log still knows where the stream continues.
	if next := uint64(l.NextLSN()) - 1; next > s.count {
		s.count = next
	}
	return s, nil
}

// Count returns the recovered stream length: the position the next commit
// event will get.
func (s *Store) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// MaxClientSeqs returns the highest committed ClientSeq per client found
// at recovery (callers use it to restart client sequence counters above
// history).
func (s *Store) MaxClientSeqs() map[types.NodeID]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.NodeID]uint64, len(s.maxClientSeq))
	for k, v := range s.maxClientSeq {
		out[k] = v
	}
	return out
}

// Append journals one commit event at stream position pos. Appends must
// arrive in position order (the recorder serialises them under its own
// lock); a gap is logged and the event dropped rather than corrupting the
// position/LSN alignment.
func (s *Store) Append(pos uint64, ev core.CommitEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pos != s.count {
		s.logf("append at position %d, expected %d; dropping", pos, s.count)
		return
	}
	s.buf = encodeEvent(s.buf[:0], pos, ev)
	if _, err := s.log.Append(s.buf); err != nil {
		s.logf("append: %v", err)
		return
	}
	s.count = pos + 1
}

// errStopRead aborts a Replay once enough events are decoded.
var errStopRead = errors.New("commitlog: read limit reached")

// ReadSince returns up to max commit events from the durable stream
// starting at position cursor (or at the oldest retained position, if the
// head below cursor has been pruned), plus the position after the last
// returned event. It reads from disk; buffered appends are flushed first.
func (s *Store) ReadSince(cursor uint64, max int) ([]core.CommitEvent, uint64, error) {
	var events []core.CommitEvent
	next := cursor
	err := s.log.Replay(wal.LSN(cursor+1), func(lsn wal.LSN, rec []byte) error {
		pos, ev, err := decodeEvent(rec)
		if err != nil {
			return fmt.Errorf("commitlog: record %d: %w", lsn, err)
		}
		if pos != uint64(lsn)-1 {
			return fmt.Errorf("commitlog: record %d carries stream position %d", lsn, pos)
		}
		if events == nil {
			next = pos
			events = make([]core.CommitEvent, 0, max)
		}
		events = append(events, ev)
		next = pos + 1
		if len(events) >= max {
			return errStopRead
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopRead) {
		return nil, cursor, err
	}
	return events, next, nil
}

// TruncateBefore unlinks segments wholly below stream position pos; call
// it with the replica-drain watermark when retention is bounded.
func (s *Store) TruncateBefore(pos uint64) { s.log.TruncateBefore(wal.LSN(pos + 1)) }

// Sync forces a group commit.
func (s *Store) Sync() error { return s.log.Sync() }

// Stats exposes the underlying log's counters.
func (s *Store) Stats() wal.Stats { return s.log.Stats() }

// Close flushes and closes the store.
func (s *Store) Close() error { return s.log.Close() }

// Crash closes the store without flushing (test hook: records since the
// last group commit are lost, as a process death would lose them).
func (s *Store) Crash() { s.log.Crash() }

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("commitlog %s: %s", s.opts.Dir, fmt.Sprintf(format, args...))
	}
}

// encodeEvent appends the wire form of (pos, ev) to dst:
//
//	pos 8 | node 4 | view 8 | kind 1 | firstSeq 8 | lastSeq 8 | at 8 |
//	nEntries 4 | nEntries x { client 4 | clientSeq 8 | digestLen 2 | digest }
func encodeEvent(dst []byte, pos uint64, ev core.CommitEvent) []byte {
	var b [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		dst = append(dst, b[:8]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(b[:4], v)
		dst = append(dst, b[:4]...)
	}
	put64(pos)
	put32(uint32(int32(ev.Node)))
	put64(uint64(ev.View))
	dst = append(dst, byte(ev.Kind))
	put64(uint64(ev.FirstSeq))
	put64(uint64(ev.LastSeq))
	put64(uint64(ev.At.UnixNano()))
	put32(uint32(len(ev.Entries)))
	for i := range ev.Entries {
		e := &ev.Entries[i]
		put32(uint32(int32(e.Req.Client)))
		put64(e.Req.ClientSeq)
		binary.BigEndian.PutUint16(b[:2], uint16(len(e.ReqDigest)))
		dst = append(dst, b[:2]...)
		dst = append(dst, e.ReqDigest...)
	}
	return dst
}

func decodeEvent(rec []byte) (pos uint64, ev core.CommitEvent, err error) {
	short := errors.New("truncated event")
	r := rec
	u64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(r)
		r = r[8:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(r) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(r)
		r = r[4:]
		return v, true
	}
	var ok bool
	if pos, ok = u64(); !ok {
		return 0, ev, short
	}
	node, ok1 := u32()
	view, ok2 := u64()
	if !ok1 || !ok2 || len(r) < 1 {
		return 0, ev, short
	}
	kind := r[0]
	r = r[1:]
	first, ok3 := u64()
	last, ok4 := u64()
	at, ok5 := u64()
	n, ok6 := u32()
	if !(ok3 && ok4 && ok5 && ok6) {
		return 0, ev, short
	}
	ev.Node = types.NodeID(int32(node))
	ev.View = types.View(view)
	ev.Kind = message.SubjectKind(kind)
	ev.FirstSeq = types.Seq(first)
	ev.LastSeq = types.Seq(last)
	ev.At = time.Unix(0, int64(at))
	if n > uint32(len(rec)) { // entries cannot outnumber record bytes
		return 0, ev, fmt.Errorf("implausible entry count %d", n)
	}
	ev.Entries = make([]message.OrderEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		client, ok1 := u32()
		cseq, ok2 := u64()
		if !ok1 || !ok2 || len(r) < 2 {
			return 0, ev, short
		}
		dn := int(binary.BigEndian.Uint16(r))
		r = r[2:]
		if len(r) < dn {
			return 0, ev, short
		}
		var digest []byte
		if dn > 0 {
			digest = append([]byte(nil), r[:dn]...)
		}
		r = r[dn:]
		ev.Entries = append(ev.Entries, message.OrderEntry{
			Req:       message.ReqID{Client: types.NodeID(int32(client)), ClientSeq: cseq},
			ReqDigest: digest,
		})
	}
	return pos, ev, nil
}
