package commitlog

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

func event(pos int) core.CommitEvent {
	return core.CommitEvent{
		Node:     types.NodeID(pos % 7),
		View:     types.View(1),
		Kind:     message.SubjectBatch,
		FirstSeq: types.Seq(pos + 1),
		LastSeq:  types.Seq(pos + 1),
		At:       time.Unix(0, int64(1000+pos)),
		Entries: []message.OrderEntry{{
			Req:       message.ReqID{Client: types.ClientID(0), ClientSeq: uint64(pos + 1)},
			ReqDigest: []byte(fmt.Sprintf("digest-%d", pos)),
		}},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 50
	for i := 0; i < n; i++ {
		s.Append(uint64(i), event(i))
	}
	events, next, err := s.ReadSince(0, n+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n || next != n {
		t.Fatalf("read %d events next=%d, want %d/%d", len(events), next, n, n)
	}
	for i, ev := range events {
		want := event(i)
		if ev.FirstSeq != want.FirstSeq || ev.Node != want.Node || !ev.At.Equal(want.At) ||
			len(ev.Entries) != 1 || ev.Entries[0].Req != want.Entries[0].Req ||
			!bytes.Equal(ev.Entries[0].ReqDigest, want.Entries[0].ReqDigest) {
			t.Fatalf("event %d round-trip mismatch: %+v vs %+v", i, ev, want)
		}
	}
	// Partial reads resume correctly.
	part, next, err := s.ReadSince(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 5 || next != 15 || part[0].FirstSeq != event(10).FirstSeq {
		t.Fatalf("partial read: %d events, next=%d", len(part), next)
	}
}

func TestReopenRecoversCountAndClientSeqs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		s.Append(uint64(i), event(i))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	s2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if c := s2.Count(); c != 12 {
		t.Fatalf("recovered Count = %d, want 12", c)
	}
	if max := s2.MaxClientSeqs()[types.ClientID(0)]; max != 12 {
		t.Fatalf("recovered MaxClientSeq = %d, want 12", max)
	}
	// The stream continues at the recovered position.
	s2.Append(12, event(12))
	events, next, err := s2.ReadSince(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || next != 13 {
		t.Fatalf("post-recovery read: %d events next=%d", len(events), next)
	}
}

func TestTruncateBeforePrunesButKeepsAlignment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		s.Append(uint64(i), event(i))
	}
	s.TruncateBefore(40)
	if st := s.Stats(); st.PrunedSegments == 0 {
		t.Fatalf("nothing pruned: %+v", st)
	}
	// A cursor below the cut reads from the oldest retained position; the
	// caller sees the gap via next - len(events).
	events, next, err := s.ReadSince(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || next != n {
		t.Fatalf("read %d events next=%d", len(events), next)
	}
	first := next - uint64(len(events))
	if first == 0 || first > 40 {
		t.Fatalf("oldest retained position %d, want in (0, 40]", first)
	}
	if events[0].FirstSeq != types.Seq(first+1) {
		t.Fatalf("position/event misalignment after pruning: first event %+v at pos %d", events[0], first)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after pruning: count and positions survive.
	s2, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if c := s2.Count(); c != n {
		t.Fatalf("Count after reopen = %d, want %d", c, n)
	}
}
