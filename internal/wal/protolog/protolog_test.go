package protolog

import (
	"reflect"
	"testing"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/types"
)

// openTest opens a store with background sync disabled so the durability
// point is exactly where the test places it.
func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func cp(wm types.Seq) core.CheckpointState {
	return core.CheckpointState{
		View:          3,
		Rank:          2,
		DeliveredUpTo: wm,
		NextSeq:       wm + 5,
		OrderDigest:   []byte{1, 2, 3, 4},
		PairEpochs:    map[types.Rank]uint64{1: 7, 2: 0},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if _, ok := s.Load(); ok {
		t.Fatal("empty store claims a checkpoint")
	}
	want := cp(42)
	s.Save(want)
	got, ok := s.Load()
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Load = %+v ok=%v, want %+v", got, ok, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the last checkpoint wins and is reported durable.
	s2 := openTest(t, dir)
	defer s2.Close()
	got, ok = s2.Load()
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered = %+v ok=%v, want %+v", got, ok, want)
	}
	if d := s2.DurableWatermark(); d != 42 {
		t.Fatalf("recovered durable watermark = %d, want 42", d)
	}
}

func TestLatestCheckpointWinsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	for wm := types.Seq(10); wm <= 50; wm += 10 {
		s.Save(cp(wm))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir)
	defer s2.Close()
	got, ok := s2.Load()
	if !ok || got.DeliveredUpTo != 50 {
		t.Fatalf("recovered watermark %d ok=%v, want 50", got.DeliveredUpTo, ok)
	}
}

// TestDurableWatermarkLagsUnsyncedSaves pins the announce-safety property:
// Save reports only fsynced checkpoints, so a crash can never lose a
// watermark the process already announced to pruning peers.
func TestDurableWatermarkLagsUnsyncedSaves(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if d := s.Save(cp(10)); d != 0 {
		t.Fatalf("unsynced save reported durable watermark %d, want 0", d)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := s.Save(cp(20)); d != 10 {
		t.Fatalf("after sync of first save, durable = %d, want 10", d)
	}
	// A crash now loses the unsynced checkpoint 20 but keeps 10.
	s.Crash()
	s2 := openTest(t, dir)
	defer s2.Close()
	got, ok := s2.Load()
	if !ok || got.DeliveredUpTo != 10 {
		t.Fatalf("post-crash recovery = %d ok=%v, want the durable 10", got.DeliveredUpTo, ok)
	}
}

// TestCrashAfterRotationKeepsDurableCheckpoint pins the prune-safety
// rule: saving a new checkpoint must never delete the segment holding
// the newest DURABLE one, even when the save rotates into a fresh
// segment — a crash before the new record's group commit must still
// recover the durable checkpoint (whose watermark was already announced
// to pruning peers).
func TestCrashAfterRotationKeepsDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Save(cp(10))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// The tiny segment bound forces this save into a fresh segment; the
	// record stays unsynced in the user-space buffer.
	s.Save(cp(20))
	s.Crash()

	s2 := openTest(t, dir)
	defer s2.Close()
	got, ok := s2.Load()
	if !ok {
		t.Fatal("crash after rotation lost every checkpoint; the durable one must survive")
	}
	if got.DeliveredUpTo != 10 {
		t.Fatalf("recovered watermark %d, want the durable 10", got.DeliveredUpTo)
	}
}

func TestOldCheckpointSegmentsPruned(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := cp(1)
	big.OrderDigest = make([]byte, 100) // force frequent rotation
	for wm := types.Seq(1); wm <= 64; wm++ {
		big.DeliveredUpTo = wm
		s.Save(big)
	}
	st := s.Stats()
	if st.PrunedSegments == 0 {
		t.Fatal("no segments pruned despite 64 superseded checkpoints over tiny segments")
	}
	if st.Segments > 2 {
		t.Fatalf("store retains %d segments; superseded checkpoints should be pruned", st.Segments)
	}
	got, ok := s.Load()
	if !ok || got.DeliveredUpTo != 64 {
		t.Fatalf("latest checkpoint %d ok=%v, want 64", got.DeliveredUpTo, ok)
	}
}

func TestCheckpointRecordRoundTrip(t *testing.T) {
	want := cp(99)
	rec := encodeCheckpoint(nil, want)
	got, err := decodeCheckpoint(rec)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	// Nil-field state survives too.
	empty := core.CheckpointState{View: 1, Rank: 1}
	got, err = decodeCheckpoint(encodeCheckpoint(nil, empty))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty round trip: got %+v want %+v", got, empty)
	}
}

// FuzzCheckpointRecord feeds arbitrary bytes to the record decoder: it
// must reject or accept without panicking, and anything it accepts must
// re-encode to a record it accepts again (no lossy parse).
func FuzzCheckpointRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{kCheckpoint})
	f.Add(encodeCheckpoint(nil, cp(7)))
	f.Add(encodeCheckpoint(nil, core.CheckpointState{}))
	f.Fuzz(func(t *testing.T, rec []byte) {
		got, err := decodeCheckpoint(rec)
		if err != nil {
			return
		}
		re := encodeCheckpoint(nil, got)
		got2, err := decodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if got.DeliveredUpTo != got2.DeliveredUpTo || got.View != got2.View ||
			got.Rank != got2.Rank || got.NextSeq != got2.NextSeq {
			t.Fatalf("lossy parse: %+v vs %+v", got, got2)
		}
	})
}

func TestProposalJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if _, ok := s.ProposalFloor(); ok {
		t.Fatal("empty store claims a proposal floor")
	}
	for next := types.Seq(2); next <= 9; next++ {
		s.JournalProposal(next)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay recovers the highest journalled counter.
	s2 := openTest(t, dir)
	defer s2.Close()
	floor, ok := s2.ProposalFloor()
	if !ok || floor != 9 {
		t.Fatalf("recovered proposal floor = %d ok=%v, want 9", floor, ok)
	}
}

// TestCrashDropsUnsyncedProposals pins the group-commit semantics: a
// crash loses proposal records after the last durability point, so the
// recovered floor is the last synced counter (the pair-assisted catch-up
// refines it upward; the floor only has to never overstate durability).
func TestCrashDropsUnsyncedProposals(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.JournalProposal(5)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.JournalProposal(6)
	s.JournalProposal(7)
	s.Crash()

	s2 := openTest(t, dir)
	defer s2.Close()
	floor, ok := s2.ProposalFloor()
	if !ok || floor != 5 {
		t.Fatalf("post-crash proposal floor = %d ok=%v, want 5 (last synced)", floor, ok)
	}
}

// TestProposalsInterleaveWithCheckpoints pins that the two record kinds
// share one log without confusing each other: checkpoint recovery and
// the proposal floor are both correct after an interleaved history, and
// proposal records never advance the durable checkpoint watermark.
func TestProposalsInterleaveWithCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.JournalProposal(11)
	s.Save(cp(10))
	s.JournalProposal(14)
	s.Save(cp(12))
	s.JournalProposal(17)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := s.DurableWatermark(); d != 12 {
		t.Fatalf("durable watermark = %d, want 12 (proposal records must not move it)", d)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	got, ok := s2.Load()
	if !ok || got.DeliveredUpTo != 12 {
		t.Fatalf("recovered checkpoint watermark %d ok=%v, want 12", got.DeliveredUpTo, ok)
	}
	floor, ok := s2.ProposalFloor()
	if !ok || floor != 17 {
		t.Fatalf("recovered proposal floor = %d ok=%v, want 17", floor, ok)
	}
}
