// Package protolog persists an order process's protocol checkpoints — the
// installed regime (view, rank), pair epochs, committed-sequence watermark,
// proposal counter and rolling committed-order digest — in a wal.Log,
// implementing core.Checkpointer.
//
// Each Save appends one self-contained checkpoint record; recovery is
// simply the last intact record, so segments holding only superseded
// checkpoints are pruned on every rotation. Save reports the highest
// checkpoint watermark known DURABLE (fsynced), which is what the process
// may announce to peers: peers prune committed-order history behind
// announced watermarks, so announcing an unsynced checkpoint could strand
// the next incarnation — restored from an older, durable checkpoint —
// behind everyone's prune floor. With group commit on the batching
// interval the durable watermark simply lags the saved one by at most one
// interval.
package protolog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/core"
	"github.com/sof-repro/sof/internal/obs"
	"github.com/sof-repro/sof/internal/types"
	"github.com/sof-repro/sof/internal/wal"
)

// Record kinds. kCheckpoint records are full protocol checkpoints;
// kProposal records are 8-byte proposal-counter appends (core's
// ProposalJournaler), written on every batch close so a restarted primary
// recovers a proposal floor far fresher than its last checkpoint.
const (
	kCheckpoint = 1
	kProposal   = 2
)

// maxDigestLen bounds the rolling-digest field a record may carry;
// anything longer on disk is corruption, not data.
const maxDigestLen = 1 << 10

// Options configures a Store.
type Options struct {
	// Dir is the log directory (one per order process incarnation
	// lineage).
	Dir string
	// SyncInterval is the group-commit period handed to the wal.Log; the
	// runtime passes its batching interval. Negative disables background
	// sync (tests).
	SyncInterval time.Duration
	// SegmentBytes overrides the wal segment size (0 = wal default).
	SegmentBytes int
	// Logger receives recovery and append diagnostics.
	Logger *log.Logger
	// Metrics registers the underlying wal.Log's instruments, tagged
	// wal="proto" on top of MetricsLabels. nil disables.
	Metrics       *obs.Registry
	MetricsLabels []obs.Label
}

// pendingSave is a checkpoint appended but not yet known durable.
type pendingSave struct {
	lsn wal.LSN
	wm  types.Seq
}

// Store is a durable protocol-checkpoint store. It is safe for concurrent
// use (the event loop saves, the harness syncs).
type Store struct {
	opts Options

	mu         sync.Mutex
	log        *wal.Log
	latest     core.CheckpointState
	has        bool
	pend       []pendingSave
	durable    types.Seq // highest watermark known fsynced
	durableLSN wal.LSN   // LSN of the newest checkpoint known fsynced
	buf        []byte    // scratch encode buffer, reused under mu
	propFloor  types.Seq // highest proposal counter recovered at open
	hasProp    bool
}

var (
	_ core.Checkpointer      = (*Store)(nil)
	_ core.ProposalJournaler = (*Store)(nil)
)

// Open opens (creating if needed) the checkpoint store in opts.Dir and
// recovers the previous incarnation's last checkpoint from it.
func Open(opts Options) (*Store, error) {
	l, err := wal.Open(wal.Options{
		Dir:           opts.Dir,
		SegmentBytes:  opts.SegmentBytes,
		SyncInterval:  opts.SyncInterval,
		Logger:        opts.Logger,
		Metrics:       opts.Metrics,
		MetricsLabels: append(append([]obs.Label{}, opts.MetricsLabels...), obs.L("wal", "proto")),
	})
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, log: l}
	err = l.Replay(0, func(lsn wal.LSN, rec []byte) error {
		if len(rec) > 0 && rec[0] == kProposal {
			next, err := decodeProposal(rec)
			if err != nil {
				s.logf("record %d: %v (skipped)", lsn, err)
				return nil
			}
			if next > s.propFloor {
				s.propFloor = next
				s.hasProp = true
			}
			return nil
		}
		cp, err := decodeCheckpoint(rec)
		if err != nil {
			// A record the CRC accepted but the decoder rejects is a
			// format bug or foreign data; skip it rather than refusing the
			// whole lineage (later checkpoints supersede it anyway).
			s.logf("record %d: %v (skipped)", lsn, err)
			return nil
		}
		s.latest = cp
		s.has = true
		s.durableLSN = lsn
		return nil
	})
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	if s.has {
		// Recovered state is durable by construction.
		s.durable = s.latest.DeliveredUpTo
	}
	return s, nil
}

// Save implements core.Checkpointer: append the checkpoint, prune
// segments below it, and report the highest watermark known durable.
func (s *Store) Save(cp core.CheckpointState) types.Seq {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = encodeCheckpoint(s.buf[:0], cp)
	lsn, err := s.log.Append(s.buf)
	if err != nil {
		s.logf("append: %v", err)
		return s.durable
	}
	s.latest = cp
	s.has = true
	s.pend = append(s.pend, pendingSave{lsn: lsn, wm: cp.DeliveredUpTo})
	s.advanceDurableLocked()
	// Prune only below the newest checkpoint known FSYNCED — not below
	// the record just appended. The new record may sit unsynced in the
	// active segment (rotation seals the previous segment, so pruning at
	// the new LSN would delete the only durable checkpoint); a crash in
	// that window must still recover the last durable one, or the process
	// would restart behind the watermark it already announced to pruning
	// peers.
	if s.durableLSN > 0 {
		s.log.TruncateBefore(s.durableLSN)
	}
	return s.durable
}

// advanceDurableLocked folds fsync progress into the durable watermark.
func (s *Store) advanceDurableLocked() {
	synced := s.log.SyncedLSN()
	i := 0
	for ; i < len(s.pend) && s.pend[i].lsn <= synced; i++ {
		if s.pend[i].wm > s.durable {
			s.durable = s.pend[i].wm
		}
		s.durableLSN = s.pend[i].lsn
	}
	s.pend = s.pend[i:]
}

// JournalProposal implements core.ProposalJournaler: append the primary's
// proposal counter (9 bytes on the group-commit path — far cheaper than a
// checkpoint). Proposal records carry no watermark and therefore never
// touch the durable-checkpoint accounting; durability follows at the
// log's sync cadence, which is exactly the crash window the pair-assisted
// resume closes.
func (s *Store) JournalProposal(next types.Seq) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf[:0], kProposal, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(s.buf[1:], uint64(next))
	if _, err := s.log.Append(s.buf); err != nil {
		s.logf("append proposal: %v", err)
	}
}

// ProposalFloor implements core.ProposalJournaler: the highest proposal
// counter recovered at open.
func (s *Store) ProposalFloor() (types.Seq, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.propFloor, s.hasProp
}

// decodeProposal parses one proposal record: kind 1 | nextSeq 8.
func decodeProposal(rec []byte) (types.Seq, error) {
	if len(rec) != 9 {
		return 0, fmt.Errorf("proposal record has %d bytes, want 9", len(rec))
	}
	return types.Seq(binary.BigEndian.Uint64(rec[1:])), nil
}

// Load implements core.Checkpointer.
func (s *Store) Load() (core.CheckpointState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest, s.has
}

// DurableWatermark returns the highest checkpoint watermark known
// fsynced.
func (s *Store) DurableWatermark() types.Seq {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceDurableLocked()
	return s.durable
}

// Sync forces a group commit; every saved checkpoint is durable after it
// returns.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.log.Sync(); err != nil {
		return err
	}
	s.advanceDurableLocked()
	return nil
}

// Stats exposes the underlying log's counters.
func (s *Store) Stats() wal.Stats { return s.log.Stats() }

// Close flushes and closes the store.
func (s *Store) Close() error { return s.log.Close() }

// Crash closes the store without flushing (test hook: checkpoints since
// the last group commit are lost, as a process death would lose them).
func (s *Store) Crash() { s.log.Crash() }

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("protolog %s: %s", s.opts.Dir, fmt.Sprintf(format, args...))
	}
}

// encodeCheckpoint appends the wire form of cp to dst:
//
//	kind 1 | view 8 | rank 4 | deliveredUpTo 8 | nextSeq 8 |
//	digestLen 2 | digest | nEpochs 4 | nEpochs x { rank 4 | epoch 8 }
func encodeCheckpoint(dst []byte, cp core.CheckpointState) []byte {
	var b [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		dst = append(dst, b[:8]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(b[:4], v)
		dst = append(dst, b[:4]...)
	}
	dst = append(dst, kCheckpoint)
	put64(uint64(cp.View))
	put32(uint32(cp.Rank))
	put64(uint64(cp.DeliveredUpTo))
	put64(uint64(cp.NextSeq))
	binary.BigEndian.PutUint16(b[:2], uint16(len(cp.OrderDigest)))
	dst = append(dst, b[:2]...)
	dst = append(dst, cp.OrderDigest...)
	put32(uint32(len(cp.PairEpochs)))
	for r, e := range cp.PairEpochs {
		put32(uint32(r))
		put64(e)
	}
	return dst
}

// decodeCheckpoint parses one checkpoint record. It must be total: record
// bytes reach it straight from disk (CRC-checked, but the format itself
// is fuzzed).
func decodeCheckpoint(rec []byte) (core.CheckpointState, error) {
	var cp core.CheckpointState
	short := errors.New("truncated checkpoint")
	r := rec
	u64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(r)
		r = r[8:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(r) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(r)
		r = r[4:]
		return v, true
	}
	if len(r) < 1 {
		return cp, short
	}
	if r[0] != kCheckpoint {
		return cp, fmt.Errorf("unknown record kind %d", r[0])
	}
	r = r[1:]
	view, ok1 := u64()
	rank, ok2 := u32()
	delivered, ok3 := u64()
	nextSeq, ok4 := u64()
	if !(ok1 && ok2 && ok3 && ok4) || len(r) < 2 {
		return cp, short
	}
	dn := int(binary.BigEndian.Uint16(r))
	r = r[2:]
	if dn > maxDigestLen {
		return cp, fmt.Errorf("implausible digest length %d", dn)
	}
	if len(r) < dn {
		return cp, short
	}
	cp.View = types.View(view)
	cp.Rank = types.Rank(rank)
	cp.DeliveredUpTo = types.Seq(delivered)
	cp.NextSeq = types.Seq(nextSeq)
	if dn > 0 {
		cp.OrderDigest = append([]byte(nil), r[:dn]...)
	}
	r = r[dn:]
	n, ok := u32()
	if !ok {
		return cp, short
	}
	if n > uint32(len(rec)) { // epochs cannot outnumber record bytes
		return cp, fmt.Errorf("implausible epoch count %d", n)
	}
	if n > 0 {
		cp.PairEpochs = make(map[types.Rank]uint64, n)
	}
	for i := uint32(0); i < n; i++ {
		rk, ok1 := u32()
		ep, ok2 := u64()
		if !ok1 || !ok2 {
			return cp, short
		}
		cp.PairEpochs[types.Rank(rk)] = ep
	}
	if len(r) != 0 {
		return cp, errors.New("trailing bytes after checkpoint")
	}
	return cp, nil
}
