// Package wal is the durable-node-state subsystem's storage core: a
// segmented, CRC-checked, group-committed write-ahead log.
//
// A Log owns one directory of segment files (%016x.seg, named by the LSN
// of their first record). Each segment opens with a 16-byte header (magic
// + first LSN) followed by records framed as
//
//	length uint32 | crc32c uint32 | payload
//
// Appends are buffered in user space and reach disk on the next group
// commit — a background fsync every Options.SyncInterval (the runtime
// passes its batching interval, so durability costs one fsync per batch
// wave, not per record) or an explicit Sync. The hot path therefore never
// waits on the disk; the crash-loss window is bounded by the sync
// interval.
//
// Recovery (Open) scans the segments in LSN order and truncates the log
// at the first torn or corrupt record: a short header, a short payload, a
// CRC mismatch or an impossible length ends the segment there, and any
// segment after the tear is dropped. The recovered log is always a clean
// prefix of what was appended — no holes, no reordering, no invented
// records (FuzzRecovery pins this property under random truncation and
// byte flips).
//
// Space is reclaimed by TruncateBefore(lsn), which unlinks whole segments
// every record of which lies below the caller's watermark; rotation at
// Options.SegmentBytes keeps segments small enough for pruning to track
// the watermark usefully.
//
// Three higher-level stores build on the Log: sessionlog (the transport
// session layer's sealed-but-unacknowledged frames, epochs and delivery
// watermarks, pruned at the acknowledgement watermark), commitlog (the
// measurement recorder's commit stream, served back to cursors that have
// fallen below the in-memory retention ring, pruned at the replica-drain
// watermark) and protolog (an order process's protocol checkpoints —
// view, pair epochs, committed watermark, committed-order digest — where
// the last intact record is the recovery point and superseded segments
// are pruned on rotation).
package wal
