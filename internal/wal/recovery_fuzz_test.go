package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// FuzzRecovery is the torn-write/corruption fuzz: build a log from the
// fuzzed record set, then damage the on-disk bytes at a fuzzed position
// (truncation or a byte flip, as a crashed machine or bit rot would) and
// reopen. Recovery must always (a) succeed, (b) yield a clean prefix of
// the appended records — never an invented, reordered or corrupt record —
// and (c) leave the log accepting appends that continue the LSN stream.
func FuzzRecovery(f *testing.F) {
	f.Add([]byte("seed"), uint16(4), true)
	f.Add(bytes.Repeat([]byte{0xab}, 300), uint16(77), false)
	f.Add([]byte{}, uint16(0), true)
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint16(9), false)

	f.Fuzz(func(t *testing.T, blob []byte, pos uint16, truncate bool) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		// Derive a deterministic record set from the blob: records of
		// varying sizes, content tagged with their index so any mixup is
		// detectable.
		var want [][]byte
		n := len(blob)%13 + 3
		for i := 0; i < n; i++ {
			size := 3 + (i*7+len(blob))%90
			rec := make([]byte, size)
			for j := range rec {
				rec[j] = byte(i)
			}
			binary.BigEndian.PutUint16(rec[:2], uint16(i))
			if len(blob) > 0 {
				rec[size-1] = blob[i%len(blob)]
			}
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
			want = append(want, rec)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Damage the files at a fuzzed position.
		segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
		sort.Strings(segs)
		var total int64
		sizes := make([]int64, len(segs))
		for i, s := range segs {
			fi, err := os.Stat(s)
			if err != nil {
				t.Fatal(err)
			}
			sizes[i] = fi.Size()
			total += fi.Size()
		}
		if total > 0 {
			off := int64(pos) % total
			idx := 0
			for off >= sizes[idx] {
				off -= sizes[idx]
				idx++
			}
			if truncate {
				if err := os.Truncate(segs[idx], off); err != nil {
					t.Fatal(err)
				}
			} else {
				data, err := os.ReadFile(segs[idx])
				if err != nil {
					t.Fatal(err)
				}
				data[off] ^= 0x5a
				if err := os.WriteFile(segs[idx], data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}

		l2, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 128})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer l2.Close()
		var got [][]byte
		prev := LSN(0)
		err = l2.Replay(0, func(lsn LSN, rec []byte) error {
			if prev != 0 && lsn != prev+1 {
				return fmt.Errorf("LSN gap: %d after %d", lsn, prev)
			}
			prev = lsn
			got = append(got, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			t.Fatalf("replay after recovery: %v", err)
		}
		if len(got) > len(want) {
			t.Fatalf("recovered %d records, only %d were appended", len(got), len(want))
		}
		// Recovered records must be a prefix *by position*: got[i] is
		// exactly want[first-1+i]. When the head was pruned... it never is
		// here, so the prefix starts at record 0.
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("recovered record %d differs from what was appended:\n got %x\nwant %x", i, got[i], want[i])
			}
		}
		// The log must keep working after recovery.
		lsn, err := l2.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(len(got))+1 {
			t.Fatalf("append after recovery got LSN %d, want %d", lsn, len(got)+1)
		}
		if err := l2.Sync(); err != nil {
			t.Fatal(err)
		}
	})
}
