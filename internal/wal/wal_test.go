package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the whole log into a slice of copied records.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	var want LSN = 0
	err := l.Replay(0, func(lsn LSN, rec []byte) error {
		if want == 0 {
			want = lsn
		}
		if lsn != want {
			t.Fatalf("replay LSN %d, want %d", lsn, want)
		}
		want++
		out = append(out, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
		want = append(want, rec)
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenRecoversSyncedRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 10 {
		t.Fatalf("recovered %d records, want 10", len(got))
	}
	if st := l2.Stats(); st.Recovered != 10 {
		t.Fatalf("Stats.Recovered = %d, want 10", st.Recovered)
	}
	// Appends continue the LSN stream.
	lsn, err := l2.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-recovery append got LSN %d, want 11", lsn)
	}
}

func TestCrashLosesOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("durable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("volatile-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash() // user-space buffer dropped

	l2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 5 {
		t.Fatalf("recovered %d records after crash, want the 5 synced ones", len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("durable-%d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
}

func TestSegmentRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if got := collect(t, l); len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}

	l.TruncateBefore(11)
	if oldest := l.OldestLSN(); oldest > 11 {
		t.Fatalf("pruning removed records >= watermark: oldest now %d", oldest)
	}
	var first LSN
	_ = l.Replay(0, func(lsn LSN, _ []byte) error {
		if first == 0 {
			first = lsn
		}
		return nil
	})
	if first == 0 || first > 11 {
		t.Fatalf("first record after prune at LSN %d", first)
	}
	if st := l.Stats(); st.PrunedSegments == 0 {
		t.Fatal("no segments pruned")
	}
	// The tail must be intact after pruning.
	var count int
	_ = l.Replay(11, func(LSN, []byte) error { count++; return nil })
	if count != 10 {
		t.Fatalf("replay from 11 visited %d records, want 10", count)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after pruning: LSNs keep their absolute positions.
	l2, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if next := l2.NextLSN(); next != 21 {
		t.Fatalf("NextLSN after reopen = %d, want 21", next)
	}
}

func TestBackgroundGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("grouped")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Crash() // buffered data already synced by the flusher
	l2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 1 || string(got[0]) != "grouped" {
		t.Fatalf("group-committed record not recovered: %q", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last 3 bytes mid-record.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, l2)
	if len(got) != 7 {
		t.Fatalf("recovered %d records from torn log, want 7", len(got))
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("Stats.TruncatedBytes = 0 after torn-tail recovery")
	}
	// The log must accept appends after recovery, at the right LSN.
	lsn, err := l2.Append([]byte("healed"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 8 {
		t.Fatalf("append after torn recovery got LSN %d, want 8", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptMiddleDropsSuffixSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("y"), 60)
	for i := 0; i < 9; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle segment.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Everything up to the corruption survives; everything after it —
	// including intact later segments — is dropped: recovery yields a
	// clean prefix, never a stream with holes.
	got := collect(t, l2)
	if len(got) == 0 || len(got) >= 9 {
		t.Fatalf("recovered %d records, want a proper non-empty prefix of 9", len(got))
	}
	if st := l2.Stats(); st.DroppedSegments == 0 {
		t.Fatal("expected suffix segments to be dropped")
	}
}

func TestRejectsOversizedAndEmptyRecords(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized record accepted")
	}
}
