// Package sessionlog persists one endpoint's transport-session state —
// sealed-but-unacknowledged frames, session epochs, acknowledgement and
// delivery watermarks — in a wal.Log, implementing session.Journal.
//
// Three record kinds follow the live session traffic (a sealed frame, an
// acknowledgement watermark, a delivery watermark); a fourth, the
// checkpoint, summarises every direction's watermark state so that
// segments full of superseded records can be pruned. The prune floor is
// the oldest journalled frame still unacknowledged: everything below it is
// either acknowledged (the peer has the frames) or summarised by a later
// checkpoint, so whole segments below the floor are unlinked once the
// acknowledgement watermark advances past them.
//
// On Open the store replays the log and reconstructs, per direction, the
// epoch, the next sequence number, the unacknowledged frame window (with
// payloads) and the delivery watermark; session.Config.Journal hands these
// to new senders and receivers, which is what lets a restarted process
// resume its previous incarnation's sessions and replay exactly the frames
// that incarnation had sealed but not delivered.
package sessionlog

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/obs"
	"github.com/sof-repro/sof/internal/session"
	"github.com/sof-repro/sof/internal/types"
	"github.com/sof-repro/sof/internal/wal"
)

// Record kinds.
const (
	kFrame      = 1
	kAck        = 2
	kDelivered  = 3
	kCheckpoint = 4
)

// pruneCheckEvery bounds how often high-rate record kinds re-evaluate the
// prune floor; acknowledgements always do (they are rare and are what
// moves the floor).
const pruneCheckEvery = 4096

// Options configures a Store.
type Options struct {
	// Dir is the log directory (one per process incarnation lineage).
	Dir string
	// SyncInterval is the group-commit period handed to the wal.Log; the
	// runtime passes its batching interval. Negative disables background
	// sync (tests).
	SyncInterval time.Duration
	// SegmentBytes overrides the wal segment size (0 = wal default).
	SegmentBytes int
	// RingLen is the session retransmission-ring bound this endpoint runs
	// with (default session.DefaultRingLen); frames evicted from the ring
	// can never be replayed, so the store forgets them too.
	RingLen int
	// Logger receives recovery and prune diagnostics.
	Logger *log.Logger
	// Metrics registers the underlying wal.Log's instruments, tagged
	// wal="session" on top of MetricsLabels. nil disables.
	Metrics       *obs.Registry
	MetricsLabels []obs.Label
}

type dirKey struct{ from, to types.NodeID }

// liveFrame tracks one journalled, not-yet-acknowledged frame. payload is
// retained only between recovery and the frame's hand-over to a recovered
// sender; frames journalled by the live incarnation keep payload nil (the
// sender's ring owns the bytes).
type liveFrame struct {
	seq     uint64
	lsn     wal.LSN
	payload []byte
}

type senderRec struct {
	epoch   uint64
	nextSeq uint64
	acked   uint64
	frames  []liveFrame // unacknowledged, ascending seq
}

type recvRec struct {
	epoch     uint64
	epochSet  bool
	delivered uint64
}

// Store is a durable session journal. It implements session.Journal and is
// safe for concurrent use by every per-peer sender goroutine and inbound
// reader of one transport.
type Store struct {
	opts Options

	mu          sync.Mutex
	log         *wal.Log
	senders     map[dirKey]*senderRec
	recvs       map[dirKey]*recvRec
	buf         []byte // scratch encode buffer, reused under mu
	sincePrune  int
	checkpoints uint64
}

var _ session.Journal = (*Store)(nil)

// Open opens (creating if needed) the session journal in opts.Dir and
// recovers the previous incarnation's state from it.
func Open(opts Options) (*Store, error) {
	if opts.RingLen <= 0 {
		opts.RingLen = session.DefaultRingLen
	}
	l, err := wal.Open(wal.Options{
		Dir:           opts.Dir,
		SegmentBytes:  opts.SegmentBytes,
		SyncInterval:  opts.SyncInterval,
		Logger:        opts.Logger,
		Metrics:       opts.Metrics,
		MetricsLabels: append(append([]obs.Label{}, opts.MetricsLabels...), obs.L("wal", "session")),
	})
	if err != nil {
		return nil, err
	}
	s := &Store{
		opts:    opts,
		log:     l,
		senders: make(map[dirKey]*senderRec),
		recvs:   make(map[dirKey]*recvRec),
	}
	if err := l.Replay(0, s.applyRecord); err != nil {
		_ = l.Close()
		return nil, fmt.Errorf("sessionlog: %w", err)
	}
	// Drop frames the previous incarnation's ring had already evicted or
	// the peer had acknowledged; what remains is exactly the replayable
	// unacknowledged window.
	for _, sr := range s.senders {
		s.trimFrames(sr)
	}
	return s, nil
}

// applyRecord folds one journalled record into the in-memory state during
// recovery. rec is reused by the replay loop, so payloads are copied.
func (s *Store) applyRecord(lsn wal.LSN, rec []byte) error {
	if len(rec) < 9 {
		return fmt.Errorf("record %d too short", lsn)
	}
	switch rec[0] {
	case kFrame:
		from, to := getID(rec[1:]), getID(rec[5:])
		payload := rec[9:]
		if len(payload) < session.Overhead {
			return fmt.Errorf("frame record %d too short", lsn)
		}
		epoch := binary.BigEndian.Uint64(payload[2:10])
		seq := binary.BigEndian.Uint64(payload[10:18])
		sr := s.sender(from, to)
		if epoch < sr.epoch {
			return nil // superseded incarnation's frame
		}
		if epoch > sr.epoch {
			sr.epoch = epoch
			sr.nextSeq = 0
			sr.acked = 0
			sr.frames = sr.frames[:0]
		}
		if seq > sr.nextSeq {
			sr.nextSeq = seq
		}
		sr.frames = append(sr.frames, liveFrame{
			seq: seq, lsn: lsn, payload: append([]byte(nil), payload...),
		})
	case kAck:
		if len(rec) < 25 {
			return fmt.Errorf("ack record %d too short", lsn)
		}
		from, to := getID(rec[1:]), getID(rec[5:])
		epoch := binary.BigEndian.Uint64(rec[9:17])
		delivered := binary.BigEndian.Uint64(rec[17:25])
		sr := s.sender(from, to)
		if epoch < sr.epoch {
			return nil
		}
		if epoch > sr.epoch {
			sr.epoch = epoch
			sr.nextSeq = 0
			sr.frames = sr.frames[:0]
			sr.acked = 0
		}
		if delivered > sr.acked {
			sr.acked = delivered
		}
	case kDelivered:
		if len(rec) < 25 {
			return fmt.Errorf("delivered record %d too short", lsn)
		}
		from, to := getID(rec[1:]), getID(rec[5:])
		epoch := binary.BigEndian.Uint64(rec[9:17])
		seq := binary.BigEndian.Uint64(rec[17:25])
		s.applyDelivered(from, to, epoch, seq)
	case kCheckpoint:
		return s.applyCheckpoint(lsn, rec)
	default:
		return fmt.Errorf("record %d has unknown kind %d", lsn, rec[0])
	}
	return nil
}

func (s *Store) applyDelivered(from, to types.NodeID, epoch, seq uint64) {
	rr := s.recv(from, to)
	switch {
	case !rr.epochSet || epoch > rr.epoch:
		rr.epoch = epoch
		rr.epochSet = true
		rr.delivered = seq
	case epoch == rr.epoch && seq > rr.delivered:
		rr.delivered = seq
	}
}

func (s *Store) applyCheckpoint(lsn wal.LSN, rec []byte) error {
	r := rec[1:]
	u32 := func() (uint32, bool) {
		if len(r) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(r)
		r = r[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(r)
		r = r[8:]
		return v, true
	}
	bad := fmt.Errorf("checkpoint record %d truncated", lsn)
	ns, ok := u32()
	if !ok {
		return bad
	}
	for i := uint32(0); i < ns; i++ {
		f, ok1 := u32()
		t, ok2 := u32()
		epoch, ok3 := u64()
		next, ok4 := u64()
		acked, ok5 := u64()
		if !(ok1 && ok2 && ok3 && ok4 && ok5) {
			return bad
		}
		sr := s.sender(types.NodeID(int32(f)), types.NodeID(int32(t)))
		if epoch < sr.epoch {
			continue
		}
		if epoch > sr.epoch {
			sr.epoch = epoch
			sr.nextSeq = 0
			sr.acked = 0
			sr.frames = sr.frames[:0]
		}
		if next > sr.nextSeq {
			sr.nextSeq = next
		}
		if acked > sr.acked {
			sr.acked = acked
		}
	}
	nr, ok := u32()
	if !ok {
		return bad
	}
	for i := uint32(0); i < nr; i++ {
		f, ok1 := u32()
		t, ok2 := u32()
		epoch, ok3 := u64()
		if !(ok1 && ok2 && ok3) || len(r) < 9 {
			return bad
		}
		set := r[0] != 0
		delivered := binary.BigEndian.Uint64(r[1:9])
		r = r[9:]
		if set {
			s.applyDelivered(types.NodeID(int32(f)), types.NodeID(int32(t)), epoch, delivered)
		}
	}
	return nil
}

func (s *Store) sender(from, to types.NodeID) *senderRec {
	k := dirKey{from, to}
	sr, ok := s.senders[k]
	if !ok {
		sr = &senderRec{}
		s.senders[k] = sr
	}
	return sr
}

func (s *Store) recv(from, to types.NodeID) *recvRec {
	k := dirKey{from, to}
	rr, ok := s.recvs[k]
	if !ok {
		rr = &recvRec{}
		s.recvs[k] = rr
	}
	return rr
}

// trimFrames drops frames the peer acknowledged or the ring evicted.
// Called with s.mu held (or during single-threaded recovery).
func (s *Store) trimFrames(sr *senderRec) {
	floor := sr.acked
	if sr.nextSeq > uint64(s.opts.RingLen) {
		if evicted := sr.nextSeq - uint64(s.opts.RingLen); evicted > floor {
			floor = evicted
		}
	}
	i := 0
	for i < len(sr.frames) && sr.frames[i].seq <= floor {
		i++
	}
	if i > 0 {
		n := copy(sr.frames, sr.frames[i:])
		for j := n; j < len(sr.frames); j++ {
			sr.frames[j] = liveFrame{}
		}
		sr.frames = sr.frames[:n]
	}
}

// --- session.Journal ---

// RecoverSender implements session.Journal.
func (s *Store) RecoverSender(self, peer types.NodeID) (session.SenderState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.senders[dirKey{self, peer}]
	if !ok || (sr.epoch == 0 && sr.nextSeq == 0) {
		return session.SenderState{}, false
	}
	st := session.SenderState{Epoch: sr.epoch, NextSeq: sr.nextSeq, Acked: sr.acked}
	if sr.nextSeq > uint64(s.opts.RingLen) {
		// Sequences the ring had evicted were trimmed from the journal
		// too; the recovered floor covers them so the sender never treats
		// their empty slots as replayable.
		if evicted := sr.nextSeq - uint64(s.opts.RingLen); evicted > st.Acked {
			st.Acked = evicted
		}
	}
	for i := range sr.frames {
		f := &sr.frames[i]
		if f.payload == nil {
			continue // journalled by this incarnation; its ring owns it
		}
		p := f.payload
		st.Unacked = append(st.Unacked, session.Frame{
			Seq:  f.seq,
			Hdr:  p[:session.HeaderLen],
			Body: p[session.HeaderLen : len(p)-session.MACLen],
			MAC:  p[len(p)-session.MACLen:],
		})
		// The recovered sender's ring owns the payload now; keep only the
		// (seq, lsn) bookkeeping for pruning.
		f.payload = nil
	}
	return st, true
}

// SealedFrame implements session.Journal.
func (s *Store) SealedFrame(self, peer types.NodeID, f session.Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 9 + f.WireLen()
	b := s.scratch(n)
	b[0] = kFrame
	putID(b[1:], self)
	putID(b[5:], peer)
	copy(b[9:], f.Hdr)
	copy(b[9+len(f.Hdr):], f.Body)
	copy(b[9+len(f.Hdr)+len(f.Body):], f.MAC)
	lsn, err := s.log.Append(b)
	if err != nil {
		s.logf("journalling sealed frame: %v", err)
		return
	}
	sr := s.sender(self, peer)
	epoch := binary.BigEndian.Uint64(f.Hdr[2:10])
	if epoch > sr.epoch {
		sr.epoch = epoch
		sr.nextSeq = 0
		sr.acked = 0
		sr.frames = sr.frames[:0]
	}
	if f.Seq > sr.nextSeq {
		sr.nextSeq = f.Seq
	}
	sr.frames = append(sr.frames, liveFrame{seq: f.Seq, lsn: lsn})
	if len(sr.frames) > s.opts.RingLen {
		s.trimFrames(sr)
	}
	s.maybePrune(false)
}

// Acked implements session.Journal.
func (s *Store) Acked(self, peer types.NodeID, epoch, delivered uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.scratch(25)
	b[0] = kAck
	putID(b[1:], self)
	putID(b[5:], peer)
	binary.BigEndian.PutUint64(b[9:], epoch)
	binary.BigEndian.PutUint64(b[17:], delivered)
	if _, err := s.log.Append(b); err != nil {
		s.logf("journalling ack: %v", err)
		return
	}
	sr := s.sender(self, peer)
	if epoch >= sr.epoch {
		if epoch > sr.epoch {
			sr.epoch = epoch
			sr.nextSeq = 0
			sr.frames = sr.frames[:0]
			sr.acked = 0
		}
		if delivered > sr.acked {
			sr.acked = delivered
		}
		s.trimFrames(sr)
	}
	s.maybePrune(true)
}

// Delivered implements session.Journal.
func (s *Store) Delivered(from, self types.NodeID, epoch, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.scratch(25)
	b[0] = kDelivered
	putID(b[1:], from)
	putID(b[5:], self)
	binary.BigEndian.PutUint64(b[9:], epoch)
	binary.BigEndian.PutUint64(b[17:], seq)
	if _, err := s.log.Append(b); err != nil {
		s.logf("journalling delivery watermark: %v", err)
		return
	}
	s.applyDelivered(from, self, epoch, seq)
	s.maybePrune(false)
}

// RecoverReceiver implements session.Journal.
func (s *Store) RecoverReceiver(from, self types.NodeID) (session.ReceiverState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rr, ok := s.recvs[dirKey{from, self}]
	if !ok || !rr.epochSet {
		return session.ReceiverState{}, false
	}
	return session.ReceiverState{Epoch: rr.epoch, EpochSet: true, Delivered: rr.delivered}, true
}

// PendingReplay implements session.Journal.
func (s *Store) PendingReplay(self types.NodeID) []types.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var peers []types.NodeID
	for k, sr := range s.senders {
		if k.from != self {
			continue
		}
		for i := range sr.frames {
			if sr.frames[i].payload != nil {
				peers = append(peers, k.to)
				break
			}
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// maybePrune advances the prune floor — the oldest journalled frame still
// unacknowledged — and, when whole segments lie below it, writes a
// checkpoint (so watermark state survives the cut) and unlinks them.
// Called with s.mu held. force is set on acknowledgements, the events that
// actually move the floor; other record kinds only check periodically.
func (s *Store) maybePrune(force bool) {
	s.sincePrune++
	if !force && s.sincePrune < pruneCheckEvery {
		return
	}
	s.sincePrune = 0
	floor := s.log.NextLSN()
	for _, sr := range s.senders {
		if len(sr.frames) > 0 && sr.frames[0].lsn < floor {
			floor = sr.frames[0].lsn
		}
	}
	if s.log.PrunableSegments(floor) == 0 {
		return
	}
	if err := s.appendCheckpoint(); err != nil {
		s.logf("checkpoint before prune: %v", err)
		return
	}
	s.log.TruncateBefore(floor)
}

// appendCheckpoint journals a summary of every direction's watermark state;
// records below it are then redundant (except live frames, which the prune
// floor protects). Called with s.mu held.
func (s *Store) appendCheckpoint() error {
	n := 1 + 4 + len(s.senders)*32 + 4 + len(s.recvs)*25
	b := s.scratch(n)
	b[0] = kCheckpoint
	off := 1
	binary.BigEndian.PutUint32(b[off:], uint32(len(s.senders)))
	off += 4
	for k, sr := range s.senders {
		putID(b[off:], k.from)
		putID(b[off+4:], k.to)
		binary.BigEndian.PutUint64(b[off+8:], sr.epoch)
		binary.BigEndian.PutUint64(b[off+16:], sr.nextSeq)
		binary.BigEndian.PutUint64(b[off+24:], sr.acked)
		off += 32
	}
	binary.BigEndian.PutUint32(b[off:], uint32(len(s.recvs)))
	off += 4
	for k, rr := range s.recvs {
		putID(b[off:], k.from)
		putID(b[off+4:], k.to)
		binary.BigEndian.PutUint64(b[off+8:], rr.epoch)
		b[off+16] = 0
		if rr.epochSet {
			b[off+16] = 1
		}
		binary.BigEndian.PutUint64(b[off+17:], rr.delivered)
		off += 25
	}
	_, err := s.log.Append(b[:off])
	if err == nil {
		s.checkpoints++
	}
	return err
}

// scratch returns the reusable encode buffer sized to n. Called with s.mu
// held; wal.Append copies out of it before returning.
func (s *Store) scratch(n int) []byte {
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	return s.buf[:n]
}

// Sync forces a group commit of everything journalled so far.
func (s *Store) Sync() error { return s.log.Sync() }

// Stats exposes the underlying log's counters plus checkpoint count.
func (s *Store) Stats() (wal.Stats, uint64) {
	s.mu.Lock()
	cp := s.checkpoints
	s.mu.Unlock()
	return s.log.Stats(), cp
}

// Close flushes and closes the journal.
func (s *Store) Close() error { return s.log.Close() }

// Crash closes the journal without flushing, losing records since the
// last group commit — the test hook that makes an in-process kill behave
// like a real process death.
func (s *Store) Crash() { s.log.Crash() }

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("sessionlog %s: %s", s.opts.Dir, fmt.Sprintf(format, args...))
	}
}

func putID(b []byte, id types.NodeID) { binary.BigEndian.PutUint32(b, uint32(int32(id))) }

func getID(b []byte) types.NodeID { return types.NodeID(int32(binary.BigEndian.Uint32(b))) }
