package sessionlog

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/session"
	"github.com/sof-repro/sof/internal/types"
)

func testKeys(t *testing.T) *crypto.LinkKeys {
	t.Helper()
	return crypto.NewLinkKeys(bytes.Repeat([]byte{7}, 32))
}

// TestRecoverSenderReplaysUnackedWindow is the core restart scenario: an
// incarnation seals frames that are never acknowledged, crashes, and the
// next incarnation — same journal directory — recovers epoch, sequence
// numbers and the frames themselves, and replays them on handshake.
func TestRecoverSenderReplaysUnackedWindow(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(t)
	self, peer := types.NodeID(1), types.NodeID(2)

	st1, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := &session.Config{Keys: keys, Resume: true, Journal: st1}
	tx1 := cfg1.NewSender(self, peer)
	var bodies [][]byte
	for i := 0; i < 5; i++ {
		body := []byte(fmt.Sprintf("payload-%d", i))
		bodies = append(bodies, body)
		tx1.Seal(body)
	}
	if err := st1.Sync(); err != nil {
		t.Fatal(err)
	}
	st1.Crash() // process dies with 5 sealed, unacknowledged frames

	st2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if pend := st2.PendingReplay(self); len(pend) != 1 || pend[0] != peer {
		t.Fatalf("PendingReplay = %v, want [%v]", pend, peer)
	}
	cfg2 := &session.Config{Keys: keys, Resume: true, Journal: st2}
	tx2 := cfg2.NewSender(self, peer)
	if !tx2.NeedsReplay() {
		t.Fatal("recovered sender does not report NeedsReplay")
	}
	// The receiver (the peer, which stayed alive) still holds the old
	// incarnation's epoch and an empty watermark; its ack must trigger a
	// full replay from the recovered ring.
	rx := (&session.Config{Keys: keys, Resume: true}).NewReceiver(peer, self)
	if err := rx.VerifyHello(tx2.Hello()); err != nil {
		t.Fatalf("receiver rejected recovered sender's hello: %v", err)
	}
	replay, lost, err := tx2.HandleAck(rx.Ack())
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("%d frames lost across restart", lost)
	}
	if len(replay) != len(bodies) {
		t.Fatalf("replay has %d frames, want %d", len(replay), len(bodies))
	}
	for i, f := range replay {
		if f.Seq != uint64(i+1) {
			t.Fatalf("replay[%d].Seq = %d", i, f.Seq)
		}
		body, err := rx.Open(f.Append(nil))
		if err != nil {
			t.Fatalf("receiver rejected recovered frame %d: %v", i, err)
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("recovered frame %d body = %q, want %q", i, body, bodies[i])
		}
	}
	// New traffic continues the recovered sequence numbers.
	f := tx2.Seal([]byte("new"))
	if f.Seq != uint64(len(bodies)+1) {
		t.Fatalf("post-recovery Seal got seq %d, want %d", f.Seq, len(bodies)+1)
	}
}

// TestRecoverReceiverKeepsWatermark: a restarted receiver acknowledges its
// durable watermark, so a live sender replays only the gap and duplicates
// stay suppressed across the restart.
func TestRecoverReceiverKeepsWatermark(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(t)
	self, peer := types.NodeID(1), types.NodeID(2)

	// Live sender (no journal: it survives).
	tx := (&session.Config{Keys: keys, Resume: true}).NewSender(peer, self)

	st1, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	rx1 := (&session.Config{Keys: keys, Resume: true, Journal: st1}).NewReceiver(self, peer)
	if err := rx1.VerifyHello(tx.Hello()); err != nil {
		t.Fatal(err)
	}
	var frames []session.Frame
	for i := 0; i < 6; i++ {
		frames = append(frames, tx.Seal([]byte(fmt.Sprintf("f%d", i))))
	}
	// Receiver delivers the first 4, then the process dies.
	for _, f := range frames[:4] {
		if _, err := rx1.Open(f.Append(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st1.Sync(); err != nil {
		t.Fatal(err)
	}
	st1.Crash()

	st2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rx2 := (&session.Config{Keys: keys, Resume: true, Journal: st2}).NewReceiver(self, peer)
	if err := rx2.VerifyHello(tx.Hello()); err != nil {
		t.Fatalf("restarted receiver rejected live sender's hello: %v", err)
	}
	replay, lost, err := tx.HandleAck(rx2.Ack())
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("%d frames lost", lost)
	}
	// Only the 2 undelivered frames replay: the durable watermark told
	// the sender where the dead incarnation really was.
	if len(replay) != 2 {
		t.Fatalf("replay has %d frames, want 2", len(replay))
	}
	for i, f := range replay {
		body, err := rx2.Open(f.Append(nil))
		if err != nil {
			t.Fatal(err)
		}
		if body == nil {
			t.Fatalf("replayed frame %d treated as duplicate", i)
		}
	}
	// A replayed duplicate of an already-delivered frame is still dropped.
	if body, err := rx2.Open(frames[0].Append(nil)); err != nil || body != nil {
		t.Fatalf("duplicate across restart not suppressed: body=%v err=%v", body, err)
	}
}

// TestAckPrunesJournal: acknowledged frames stop pinning segments — after
// the watermark passes them, whole segments are unlinked and a checkpoint
// preserves the direction state.
func TestAckPrunesJournal(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(t)
	self, peer := types.NodeID(1), types.NodeID(2)
	st, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &session.Config{Keys: keys, Resume: true, Journal: st}
	tx := cfg.NewSender(self, peer)
	rx := (&session.Config{Keys: keys, Resume: true}).NewReceiver(peer, self)
	if err := rx.VerifyHello(tx.Hello()); err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("z"), 100)
	for i := 0; i < 40; i++ {
		f := tx.Seal(body)
		if _, err := rx.Open(f.Append(nil)); err != nil {
			t.Fatal(err)
		}
	}
	// The peer acknowledges everything via a reconnect handshake.
	if err := rx.VerifyHello(tx.Hello()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.HandleAck(rx.Ack()); err != nil {
		t.Fatal(err)
	}
	ls, cps := st.Stats()
	if ls.PrunedSegments == 0 {
		t.Fatalf("no segments pruned after full acknowledgement: %+v", ls)
	}
	if cps == 0 {
		t.Fatal("no checkpoint written before pruning")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: watermark state survived the pruning via the checkpoint.
	st2, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sst, ok := st2.RecoverSender(self, peer)
	if !ok {
		t.Fatal("sender state lost after pruning")
	}
	if sst.NextSeq != 40 {
		t.Fatalf("recovered NextSeq = %d, want 40", sst.NextSeq)
	}
	if len(sst.Unacked) != 0 {
		t.Fatalf("recovered %d unacked frames, want 0 (all acknowledged)", len(sst.Unacked))
	}
	if pend := st2.PendingReplay(self); len(pend) != 0 {
		t.Fatalf("PendingReplay = %v after full acknowledgement", pend)
	}
}

// TestRecoveredSenderSurvivesPeerWatermarkRegression: a recovered sender
// whose peer acks BELOW the recovered acknowledgement floor (the peer
// lost its own watermark) must replay only the frames it actually holds,
// counting the forgotten prefix as lost — never emitting empty ring
// slots as zero-value frames, which would wedge the link.
func TestRecoveredSenderSurvivesPeerWatermarkRegression(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(t)
	self, peer := types.NodeID(5), types.NodeID(6)

	st1, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := &session.Config{Keys: keys, Resume: true, Journal: st1}
	tx1 := cfg1.NewSender(self, peer)
	for i := 0; i < 8; i++ {
		tx1.Seal([]byte(fmt.Sprintf("w%d", i)))
	}
	// The peer acknowledges 5 of the 8; the journal forgets frames 1..5.
	st1.Acked(self, peer, epochOf(t, st1, self, peer), 5)
	if err := st1.Sync(); err != nil {
		t.Fatal(err)
	}
	st1.Crash()

	st2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg2 := &session.Config{Keys: keys, Resume: true, Journal: st2}
	tx2 := cfg2.NewSender(self, peer)
	// A FRESH receiver (the peer also lost its state): acks delivered=0,
	// below the recovered floor of 5.
	rx := (&session.Config{Keys: keys, Resume: true}).NewReceiver(peer, self)
	if err := rx.VerifyHello(tx2.Hello()); err != nil {
		t.Fatal(err)
	}
	replay, lost, err := tx2.HandleAck(rx.Ack())
	if err != nil {
		t.Fatal(err)
	}
	if lost != 5 {
		t.Errorf("lost = %d, want the 5 forgotten frames", lost)
	}
	if len(replay) != 3 {
		t.Fatalf("replay has %d frames, want the 3 recovered ones", len(replay))
	}
	for i, f := range replay {
		if f.Seq != uint64(6+i) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, f.Seq, 6+i)
		}
		if f.WireLen() <= session.Overhead {
			t.Fatalf("replay[%d] is a zero-value frame (wire len %d)", i, f.WireLen())
		}
		if _, err := rx.Open(f.Append(nil)); err != nil {
			t.Fatalf("receiver rejected replayed frame %d: %v", i, err)
		}
	}
}

// epochOf reads back the recovered sender epoch for a direction (test
// helper: Acked records need the live epoch).
func epochOf(t *testing.T, st *Store, self, peer types.NodeID) uint64 {
	t.Helper()
	sst, ok := st.RecoverSender(self, peer)
	if !ok {
		t.Fatal("no sender state for epoch lookup")
	}
	return sst.Epoch
}

// TestCrashLosesOnlyUnsyncedFrames pins the group-commit contract at this
// layer: frames sealed after the last sync die with the process.
func TestCrashLosesOnlyUnsyncedFrames(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(t)
	self, peer := types.NodeID(3), types.NodeID(4)
	st, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	tx := (&session.Config{Keys: keys, Resume: true, Journal: st}).NewSender(self, peer)
	tx.Seal([]byte("durable"))
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	tx.Seal([]byte("volatile"))
	st.Crash()

	st2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sst, ok := st2.RecoverSender(self, peer)
	if !ok {
		t.Fatal("no recovered sender state")
	}
	if len(sst.Unacked) != 1 || !bytes.Equal(sst.Unacked[0].Body, []byte("durable")) {
		t.Fatalf("recovered window = %d frames, want just the synced one", len(sst.Unacked))
	}
	if sst.NextSeq != 1 {
		t.Fatalf("recovered NextSeq = %d, want 1", sst.NextSeq)
	}
}
