package codec

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0xCDEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I32(-42)
	w.I64(-1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte("hello"))
	w.String("world")
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xCDEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I32(); got != -42 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.I64(); got != -1<<40 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool#1 = %v", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool#2 = %v", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(8)
	w.U64(7)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Errorf("cut=%d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails: truncated
	if r.Err() == nil {
		t.Fatal("expected error after truncated read")
	}
	// Subsequent reads return zero values and preserve the first error.
	if got := r.U8(); got != 0 {
		t.Errorf("U8 after error = %d, want 0", got)
	}
	if got := r.Bytes32(); got != nil {
		t.Errorf("Bytes32 after error = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("sticky err = %v, want ErrTruncated", r.Err())
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	w := NewWriter(8)
	w.U8(1)
	w.U8(2)
	r := NewReader(w.Bytes())
	r.U8()
	if err := r.Finish(); err == nil {
		t.Error("Finish with trailing bytes: want error, got nil")
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Error("Bool(7): want error")
	}
}

func TestOversizeLengthPrefix(t *testing.T) {
	w := NewWriter(8)
	w.U32(MaxBytes + 1)
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); got != nil {
		t.Errorf("oversize Bytes32 = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrOversize) {
		t.Errorf("err = %v, want ErrOversize", r.Err())
	}
}

func TestEmptyBytes32(t *testing.T) {
	w := NewWriter(4)
	w.Bytes32(nil)
	r := NewReader(w.Bytes())
	got := r.Bytes32()
	if len(got) != 0 || r.Err() != nil {
		t.Errorf("empty Bytes32 round trip: got %v err %v", got, r.Err())
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

// Property: any sequence of byte strings round-trips and the encoding is
// unambiguous (Finish succeeds exactly at the end).
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(chunks [][]byte) bool {
		w := NewWriter(64)
		w.U32(uint32(len(chunks)))
		for _, c := range chunks {
			w.Bytes32(c)
		}
		r := NewReader(w.Bytes())
		n := r.U32()
		if int(n) != len(chunks) {
			return false
		}
		for _, c := range chunks {
			got := r.Bytes32()
			if !bytes.Equal(got, c) {
				return false
			}
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer round trips for arbitrary values.
func TestQuickIntegers(t *testing.T) {
	f := func(a uint64, b int64, c uint32, d int32, e uint16, g uint8, h bool) bool {
		w := NewWriter(64)
		w.U64(a)
		w.I64(b)
		w.U32(c)
		w.I32(d)
		w.U16(e)
		w.U8(g)
		w.Bool(h)
		r := NewReader(w.Bytes())
		ok := r.U64() == a && r.I64() == b && r.U32() == c && r.I32() == d &&
			r.U16() == e && r.U8() == g && r.Bool() == h
		return ok && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
