package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrTruncated is returned when the input ends before a value is complete.
var ErrTruncated = errors.New("codec: truncated input")

// ErrOversize is returned when a length prefix exceeds MaxBytes.
var ErrOversize = errors.New("codec: length prefix exceeds limit")

// MaxBytes bounds any single length-prefixed byte string (16 MiB). A wire
// peer that claims more is malformed or malicious.
const MaxBytes = 16 << 20

// Writer appends canonical binary values to a buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice aliases the Writer's internal
// storage; callers that keep it must not keep writing.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// I32 appends a big-endian int32 (two's complement).
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends a big-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends 0x01 for true, 0x00 for false.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a 32-bit length prefix followed by the bytes. Writes
// larger than MaxBytes (a programming error on our side) are encoded with
// their true length rather than clamped or dropped: clamping would corrupt
// the stream, and the Reader enforces the limit anyway, making the failure
// visible at the decode site, which is the trust boundary.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes with no length prefix (for fixed-size digests whose
// size is implied by the suite, or already-framed sub-messages).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// writerPool recycles Writers whose buffers are only needed transiently
// (digest inputs, counter-sign bodies). Encodings that are retained —
// message wire caches, signable bodies stored on messages — must use
// NewWriter instead.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns an empty pooled Writer. The caller must Release it when
// the encoded bytes are no longer referenced; the bytes returned by Bytes
// are invalidated by Release.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.buf = w.buf[:0]
	return w
}

// Release returns w to the pool. Any slice previously obtained from
// w.Bytes must not be used afterwards.
func (w *Writer) Release() { writerPool.Put(w) }

// Reader decodes canonical binary values and keeps a sticky error.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or if unread bytes remain.
// Trailing garbage after a signed message is rejected so that signature
// checks cover every byte a peer sent.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("codec: %d trailing bytes after message", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I32 reads a big-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a boolean; any byte other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(errors.New("codec: invalid boolean byte"))
		return false
	}
}

// Bytes32 reads a 32-bit length-prefixed byte string. The returned slice
// aliases the input buffer; callers that retain it must copy.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > MaxBytes {
		r.fail(ErrOversize)
		return nil
	}
	if uint64(n) > uint64(math.MaxInt32) {
		r.fail(ErrOversize)
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed UTF-8 string.
func (r *Reader) String() string { return string(r.Bytes32()) }

// Raw reads exactly n bytes with no length prefix.
func (r *Reader) Raw(n int) []byte { return r.take(n) }
