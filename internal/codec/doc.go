// Package codec provides the canonical binary encoding used for every wire
// message in this repository.
//
// Signatures are computed over canonical bytes, so the encoding must be
// deterministic: fixed-width big-endian integers, length-prefixed byte
// strings, and no map iteration anywhere. The Writer never fails; the
// Reader accumulates a sticky error so call sites can decode a whole
// message and check the error once, keeping protocol code linear.
package codec
