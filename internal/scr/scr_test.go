// Package scr_test exercises the Signal-on-Crash and Recovery extension
// (Section 4.4), which lives in internal/core behind the types.SCR
// topology: n = 3f+2, view-based coordinator rotation with Unwilling
// messages, and optimistic pair recovery after false timing suspicions.
package scr_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/fsp"
	"github.com/sof-repro/sof/internal/harness"
	"github.com/sof-repro/sof/internal/netsim"
	"github.com/sof-repro/sof/internal/types"
)

func scrCluster(t *testing.T, mutate func(*harness.Options)) *harness.Cluster {
	t.Helper()
	opts := harness.Options{
		Protocol:         types.SCR,
		F:                2,
		BatchInterval:    10 * time.Millisecond,
		MaxBatchBytes:    1024,
		Delta:            150 * time.Millisecond,
		RecoveryInterval: 100 * time.Millisecond,
		Mirror:           true,
		Net:              netsim.LANDefaults(),
		Seed:             1,
		KeepCommits:      true,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := harness.New(opts)
	if err != nil {
		t.Fatalf("harness.New: %v", err)
	}
	c.Start()
	return c
}

func submit(t *testing.T, c *harness.Cluster, n, size int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Submit(0, make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		c.RunFor(3 * time.Millisecond)
	}
}

func assertAgreement(t *testing.T, c *harness.Cluster, minFull, minLen int) {
	t.Helper()
	seqs := make(map[types.NodeID][]string)
	for _, ev := range c.Events.Commits() {
		for i, e := range ev.Entries {
			seqs[ev.Node] = append(seqs[ev.Node], fmt.Sprintf("%d:%v", ev.FirstSeq+types.Seq(i), e.Req))
		}
	}
	var longest []string
	for _, s := range seqs {
		if len(s) > len(longest) {
			longest = s
		}
	}
	if len(longest) < minLen {
		t.Fatalf("longest delivery %d < %d", len(longest), minLen)
	}
	full := 0
	for node, s := range seqs {
		for i := range s {
			if s[i] != longest[i] {
				t.Fatalf("node %v diverges at %d: %s vs %s", node, i, s[i], longest[i])
			}
		}
		if len(s) == len(longest) {
			full++
		}
	}
	if full < minFull {
		t.Fatalf("%d processes delivered everything, want >= %d", full, minFull)
	}
}

func TestSCRTopology(t *testing.T) {
	c := scrCluster(t, nil)
	if c.Topo.N() != 8 || c.Topo.NumShadows() != 3 || c.Topo.NumCandidates() != 3 {
		t.Errorf("SCR f=2 topology: n=%d shadows=%d candidates=%d, want 8/3/3",
			c.Topo.N(), c.Topo.NumShadows(), c.Topo.NumCandidates())
	}
	for r := types.Rank(1); int(r) <= c.Topo.NumCandidates(); r++ {
		if _, _, paired, _ := c.Topo.Candidate(r); !paired {
			t.Errorf("SCR candidate %d is unpaired; only pairs may coordinate", r)
		}
	}
}

func TestSCRFailFreeOrdering(t *testing.T) {
	c := scrCluster(t, nil)
	submit(t, c, 15, 100)
	c.RunFor(500 * time.Millisecond)
	assertAgreement(t, c, 8, 15)
	if fs := c.Events.FailSignals(); len(fs) != 0 {
		t.Errorf("fail-free run emitted fail-signals: %+v", fs)
	}
}

func TestSCRValueFaultRotatesView(t *testing.T) {
	c := scrCluster(t, nil)
	submit(t, c, 5, 100)
	c.RunFor(300 * time.Millisecond)
	if err := c.InjectCoordinatorValueFault(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(500 * time.Millisecond)
	installed := false
	for _, ev := range c.Events.Installs() {
		if ev.Rank == 2 {
			installed = true
		}
	}
	if !installed {
		t.Fatal("view 2 (pair 2) never installed")
	}
	submit(t, c, 6, 100)
	c.RunFor(500 * time.Millisecond)
	assertAgreement(t, c, 6, 10)
	// The value-domain failure is permanent at the detecting shadow.
	s1, _ := c.Topo.ShadowID(1)
	if got := c.SC[s1].Pair().Status(); got != fsp.PermanentlyDown {
		t.Errorf("pair 1 status at shadow = %v, want permanently_down", got)
	}
}

func TestSCRFalseSuspicionRecovery(t *testing.T) {
	c := scrCluster(t, nil)
	submit(t, c, 4, 100)
	c.RunFor(300 * time.Millisecond)

	// Sever the pair link of the acting coordinator: the shadow's
	// time-domain check fires on the next request even though both
	// members are correct (a false suspicion under assumption 3(b)(i)).
	p1, _ := c.Topo.ReplicaID(1)
	s1, _ := c.Topo.ShadowID(1)
	c.Fabric.Cut(p1, s1)
	submit(t, c, 1, 64)
	c.RunFor(time.Second)

	emitted := false
	for _, ev := range c.Events.FailSignals() {
		if ev.Emitter {
			emitted = true
		}
	}
	if !emitted {
		t.Fatal("no fail-signal after pair link cut")
	}
	// The system rotates to pair 2 and keeps ordering.
	c.RunFor(time.Second)
	submit(t, c, 4, 64)
	c.RunFor(500 * time.Millisecond)
	assertAgreement(t, c, 6, 8)

	// Heal the link: the pair's beats go through again and it recovers.
	c.Fabric.Heal(p1, s1)
	c.RunFor(2 * time.Second)
	recovered := map[types.NodeID]bool{}
	for _, ev := range c.Events.Recoveries() {
		recovered[ev.Node] = true
	}
	if !recovered[p1] || !recovered[s1] {
		t.Fatalf("pair 1 did not recover on both sides: %v", recovered)
	}
	if got := c.SC[p1].Pair().Status(); got != fsp.Up {
		t.Errorf("recovered pair status = %v, want up", got)
	}
	if got := c.SC[p1].Pair().Epoch(); got != 1 {
		t.Errorf("recovered pair epoch = %d, want 1", got)
	}
}

func TestSCRRecoveredPairCoordinatesAgain(t *testing.T) {
	c := scrCluster(t, nil)
	submit(t, c, 3, 64)
	c.RunFor(200 * time.Millisecond)

	// Falsely suspect pair 1 (link cut), rotate to pair 2, recover pair 1.
	p1, _ := c.Topo.ReplicaID(1)
	s1, _ := c.Topo.ShadowID(1)
	c.Fabric.Cut(p1, s1)
	submit(t, c, 1, 64)
	c.RunFor(1500 * time.Millisecond)
	c.Fabric.Heal(p1, s1)
	c.RunFor(2 * time.Second)

	// Now value-fault pair 2 (the acting coordinator of view 2): the view
	// moves to pair 3.
	if err := c.InjectValueFaultAt(2, 2); err != nil {
		t.Fatal(err)
	}
	submit(t, c, 2, 64)
	c.RunFor(2 * time.Second)

	// And value-fault pair 3 in view 3: the rotation wraps to the
	// recovered pair 1 (view 4), which must be willing and coordinate.
	if err := c.InjectValueFaultAt(3, 3); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	submit(t, c, 5, 64)
	c.RunFor(2 * time.Second)

	rank1Again := false
	for _, ev := range c.Events.Installs() {
		if ev.Rank == 1 && ev.Node == p1 {
			rank1Again = true
		}
	}
	if !rank1Again {
		t.Fatal("recovered pair 1 was never re-installed as coordinator")
	}
	assertAgreement(t, c, 4, 10)
}

func TestSCRUnwillingSkipsDownCandidate(t *testing.T) {
	c := scrCluster(t, nil)
	submit(t, c, 3, 64)
	c.RunFor(200 * time.Millisecond)

	// Take pair 2 permanently down first (it is not coordinating, so no
	// view change happens yet) ...
	if err := c.InjectValueFaultAt(2, 1); err != nil {
		t.Fatal(err)
	}
	c.RunFor(300 * time.Millisecond)
	// ... then kill the acting coordinator pair 1. View 2's candidate is
	// the down pair 2, which must answer Unwilling(2), pushing the system
	// to view 3 (pair 3).
	if err := c.InjectCoordinatorValueFault(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)

	rank3 := false
	for _, ev := range c.Events.Installs() {
		if ev.Rank == 3 {
			rank3 = true
		}
	}
	if !rank3 {
		t.Fatal("view did not advance past the unwilling candidate to pair 3")
	}
	submit(t, c, 5, 64)
	c.RunFor(time.Second)
	assertAgreement(t, c, 4, 8)
}

func TestSCRRejectsDumbOptimization(t *testing.T) {
	_, err := harness.New(harness.Options{
		Protocol:         types.SCR,
		F:                2,
		DumbOptimization: true, // harness must strip it for SCR
	})
	if err != nil {
		t.Fatalf("harness should disable the dumb optimization for SCR: %v", err)
	}
}
