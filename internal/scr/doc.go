// Package scr anchors the test suite for the Signal-on-Crash and Recovery
// extension (Section 4.4 of the paper). The SCR protocol itself lives in
// internal/core behind the types.SCR topology: n = 3f+2 order processes,
// view-based coordinator rotation with Unwilling messages, and optimistic
// pair recovery after false timing suspicions. The tests here exercise
// that code path end to end; the package contains no production code of
// its own.
package scr
