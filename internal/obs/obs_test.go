package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildRegistry assembles a registry exercising every instrument kind,
// label escaping, and func-backed promotion — the golden fixture.
func buildRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("sof_commits_total", "Committed entries.", L("node", "0"), L("group", "1"))
	c.Add(42)
	r.Counter("sof_commits_total", "Committed entries.", L("node", "0"), L("group", "0")).Add(7)
	g := r.Gauge("sof_commit_watermark", "Highest contiguously delivered sequence.", L("node", "0"))
	g.SetInt(1024)
	r.Gauge("sof_batch_fill_ratio", "Fill ratio of the last closed batch.", L("node", "0")).Set(0.625)
	r.GaugeFunc("sof_peer_queue_depth", "Frames waiting in the peer's send queue.",
		func() float64 { return 3 }, L("node", "0"), L("peer", "2"))
	r.CounterFunc("sof_peer_dropped_total", "Frames dropped at a full send queue.",
		func() uint64 { return 5 }, L("node", "0"), L("peer", "2"))
	h := r.Histogram("sof_wal_fsync_seconds", "WAL group-commit fsync latency.",
		[]float64{0.001, 0.01, 0.1}, L("node", "0"), L("wal", "proto"))
	h.Observe(0.0004)
	h.Observe(0.002)
	h.Observe(0.002)
	h.Observe(0.25)
	// Label values that need escaping: backslash, quote, newline.
	r.Gauge("sof_escape_check", "Label escaping.", L("path", `C:\tmp`+"\n"+`"x"`)).Set(1)
	return r
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, buildRegistry().Collect()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestExpositionParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, buildRegistry().Collect()); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	esc := fams["sof_escape_check"]
	if esc == nil || len(esc.Samples) != 1 {
		t.Fatalf("escape-check family missing: %+v", esc)
	}
	if got := esc.Samples[0].Labels["path"]; got != `C:\tmp`+"\n"+`"x"` {
		t.Errorf("label value did not round-trip: %q", got)
	}
	h := fams["sof_wal_fsync_seconds"]
	if h == nil || h.Kind != "histogram" {
		t.Fatalf("histogram family missing: %+v", h)
	}
	// 3 finite buckets + +Inf + _sum + _count = 6 samples.
	if len(h.Samples) != 6 {
		t.Errorf("histogram samples = %d, want 6", len(h.Samples))
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_decl 1",
		"# TYPE x counter\nx{le=\"oops} 1",
		"# TYPE x counter\nx 1\n# TYPE x counter\nx 2",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2",
		"# TYPE x counter\n2x 1",
	}
	for _, in := range bad {
		if _, err := ParseText([]byte(in)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", in)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within (1,2]", q)
	}
	h.Observe(100) // beyond the last finite bound
	if q := h.Quantile(1.0); q != 8 {
		t.Errorf("p100 with overflow sample = %v, want last finite bound 8", q)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc() // nil instrument from nil registry: all no-ops
	var g *Gauge
	g.Set(3)
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.GaugeFunc("y", "y", func() float64 { return 0 })
	if r.Collect() != nil {
		t.Error("nil registry Collect should return nil")
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments should read zero")
	}
}

func TestReRegisterReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("node", "1"))
	a.Add(3)
	b := r.Counter("x_total", "x", L("node", "1"))
	if a != b {
		t.Fatal("re-registration must re-attach to the existing series")
	}
	if b.Value() != 3 {
		t.Errorf("value lost on re-registration: %d", b.Value())
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := buildRegistry()
	ready := true
	var mu sync.Mutex
	mux := NewMux(r, func() error {
		mu.Lock()
		defer mu.Unlock()
		if !ready {
			return errNotReady
		}
		return nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	if code, body := get("/metrics"); code != 200 {
		t.Fatalf("/metrics = %d", code)
	} else if _, err := ParseText([]byte(body)); err != nil {
		t.Fatalf("/metrics malformed: %v", err)
	} else if !strings.Contains(body, "sof_commit_watermark") {
		t.Fatal("/metrics missing expected family")
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz while ready = %d", code)
	}
	mu.Lock()
	ready = false
	mu.Unlock()
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "catching up") {
		t.Fatalf("/readyz while not ready = %d %q, want 503 with reason", code, body)
	}
}

var errNotReady = errNotReadyType{}

type errNotReadyType struct{}

func (errNotReadyType) Error() string { return "catching up" }

func TestQuantileEmptyAndInf(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(5)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || !math.IsInf(s.Buckets[0].UpperBound, 1) {
		t.Fatalf("bound-less histogram should have only the +Inf bucket: %+v", s)
	}
	if s.Count != 1 {
		t.Errorf("count = %d", s.Count)
	}
}
