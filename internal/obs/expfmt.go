// Prometheus text exposition (expfmt version 0.0.4), hand-rolled: the
// writer renders Collect() snapshots, the parser validates scraped
// output in tests and CI without an external binary.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	w.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	w.WriteByte('}')
}

// WriteText renders collected families in the text exposition format.
func WriteText(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Samples {
			if f.Kind == KindHistogram && s.Histogram != nil {
				for _, b := range s.Histogram.Buckets {
					bw.WriteString(f.Name)
					bw.WriteString("_bucket")
					writeLabels(bw, s.Labels, L("le", formatValue(b.UpperBound)))
					fmt.Fprintf(bw, " %d\n", b.Count)
				}
				bw.WriteString(f.Name)
				bw.WriteString("_sum")
				writeLabels(bw, s.Labels)
				fmt.Fprintf(bw, " %s\n", formatValue(s.Histogram.Sum))
				bw.WriteString(f.Name)
				bw.WriteString("_count")
				writeLabels(bw, s.Labels)
				fmt.Fprintf(bw, " %d\n", s.Histogram.Count)
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, s.Labels)
			fmt.Fprintf(bw, " %s\n", formatValue(s.Value))
		}
	}
	return bw.Flush()
}

// ParsedSample is one sample line as seen by the validating parser.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one TYPE-declared family and its samples.
type ParsedFamily struct {
	Name    string
	Kind    string
	Samples []ParsedSample
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// baseName strips a histogram sample suffix so _bucket/_sum/_count
// lines attach to their declared family.
func baseName(name string, fams map[string]*ParsedFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if f := fams[b]; f != nil && f.Kind == "histogram" {
				return b
			}
		}
	}
	return name
}

// ParseText is the validating exposition parser used by tests and the
// CI scrape step. It checks line syntax, metric/label name validity,
// label-value unescaping, that every sample belongs to a TYPE-declared
// family, and that each histogram series carries a monotonic bucket
// set ending in le="+Inf" whose count equals its _count sample. It
// returns the families keyed by name.
func ParseText(data []byte) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("exposition line %d: %s (%q)", ln+1, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				return nil, fail("malformed comment")
			}
			if !validMetricName(parts[2]) {
				return nil, fail("invalid metric name %q", parts[2])
			}
			if parts[1] == "TYPE" {
				if len(parts) != 4 {
					return nil, fail("TYPE missing kind")
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fail("unknown kind %q", parts[3])
				}
				if fams[parts[2]] != nil {
					return nil, fail("duplicate TYPE for %q", parts[2])
				}
				fams[parts[2]] = &ParsedFamily{Name: parts[2], Kind: parts[3]}
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		f := fams[baseName(sample.Name, fams)]
		if f == nil {
			return nil, fail("sample %q has no TYPE declaration", sample.Name)
		}
		f.Samples = append(f.Samples, sample)
	}
	for _, f := range fams {
		if f.Kind != "histogram" {
			continue
		}
		if err := checkHistogram(f); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("no metric name")
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote, esc := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case esc:
				esc = false
			case inQuote && c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		name := body[:eq]
		if !validMetricName(name) || strings.Contains(name, ":") {
			return fmt.Errorf("invalid label name %q", name)
		}
		if len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("label %q value not quoted", name)
		}
		// Find the closing quote, honouring escapes.
		j := eq + 2
		var val strings.Builder
		for ; j < len(body); j++ {
			c := body[j]
			if c == '\\' {
				if j+1 >= len(body) {
					return fmt.Errorf("dangling escape in label %q", name)
				}
				j++
				switch body[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", body[j], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(body) {
			return fmt.Errorf("unterminated value for label %q", name)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		body = body[j+1:]
		if len(body) > 0 {
			if body[0] != ',' {
				return fmt.Errorf("expected ',' after label %q", name)
			}
			body = body[1:]
		}
	}
	return nil
}

// checkHistogram validates one histogram family: per label set, the
// buckets must be le-sorted, cumulative, end at +Inf, and agree with
// the _count sample.
func checkHistogram(f *ParsedFamily) error {
	type hseries struct {
		buckets []ParsedSample
		count   *float64
		sum     bool
	}
	series := map[string]*hseries{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s;", k, labels[k])
		}
		return b.String()
	}
	get := func(k string) *hseries {
		h := series[k]
		if h == nil {
			h = &hseries{}
			series[k] = h
		}
		return h
	}
	for _, s := range f.Samples {
		h := get(keyOf(s.Labels))
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			h.buckets = append(h.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			h.count = &v
		case strings.HasSuffix(s.Name, "_sum"):
			h.sum = true
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", f.Name, s.Name)
		}
	}
	for k, h := range series {
		if len(h.buckets) == 0 || h.count == nil || !h.sum {
			return fmt.Errorf("histogram %s{%s}: missing _bucket/_sum/_count triple", f.Name, k)
		}
		prev := math.Inf(-1)
		prevCount := -1.0
		for _, b := range h.buckets {
			le, err := parseLe(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("histogram %s{%s}: %v", f.Name, k, err)
			}
			if le <= prev {
				return fmt.Errorf("histogram %s{%s}: le %v out of order", f.Name, k, le)
			}
			if b.Value < prevCount {
				return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative", f.Name, k)
			}
			prev, prevCount = le, b.Value
		}
		last := h.buckets[len(h.buckets)-1]
		if last.Labels["le"] != "+Inf" {
			return fmt.Errorf("histogram %s{%s}: last bucket is %q, want +Inf", f.Name, k, last.Labels["le"])
		}
		if last.Value != *h.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", f.Name, k, last.Value, *h.count)
		}
	}
	return nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", s)
	}
	return v, nil
}
