// Package obs is the dependency-free metrics layer: an instrument
// registry (atomic counters, gauges and fixed-bucket histograms, plus
// function-backed instruments that read existing counters at scrape
// time), point-in-time Collect() snapshots, a hand-rolled Prometheus
// text-format (expfmt 0.0.4) writer, and the /metrics /healthz /readyz
// HTTP handlers sofnode serves.
//
// The registry is built for a hot path that must stay allocation-free:
// instruments are registered once at construction time and held as
// direct pointers by the emitting layer, so recording an event is one
// atomic operation — no map lookup, no interface dispatch, no
// allocation. Every instrument method is nil-safe (a nil *Counter is a
// no-op), so layers built without a registry pay one predictable branch
// per event and nothing else.
//
// Function-backed instruments (CounterFunc/GaugeFunc) exist for state
// that already has a thread-safe owner — the transport's per-peer
// atomics, a WAL's mutex-guarded segment list, a channel's depth. They
// cost nothing until Collect() evaluates them, which is the idiomatic
// way to promote an existing shutdown-snapshot Stats() into a live
// gauge.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind is the instrument family type, mirroring the Prometheus TYPE.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Nil-safe: a nil Counter is a no-op.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64-valued gauge (integers round-trip
// exactly up to 2^53).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d (CAS loop; uncontended in practice).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-boundary histogram: bounds are upper limits
// (the +Inf bucket is implicit), counts are per-bucket atomics, and the
// sum is an atomic float. Observe is a linear scan over a handful of
// bounds plus two atomic adds — no allocation, no lock.
//
// A Histogram is usable standalone (NewHistogram) for bench summaries,
// or registered via Registry.Histogram for exposition.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram returns a standalone histogram over the given ascending
// upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// DefBuckets are general-purpose latency bounds in seconds, from 100µs
// to 10s — wide enough for both a submit path and a WAL fsync.
func DefBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Bucket is one cumulative histogram bucket: the count of samples at or
// below UpperBound (math.Inf(1) for the last).
type Bucket struct {
	UpperBound float64
	Count      uint64 // cumulative
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Snapshot returns cumulative buckets, sum and count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.bounds)+1),
		Sum:     math.Float64frombits(h.sum.Load()),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
	}
	s.Count = s.Buckets[len(s.Buckets)-1].Count
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the bucket that holds it; samples beyond the last finite bound
// report that bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	prevCount, prevBound := uint64(0), 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return prevBound
			}
			span := float64(b.Count - prevCount)
			if span == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prevCount)) / span
			return prevBound + frac*(b.UpperBound-prevBound)
		}
		prevCount, prevBound = b.Count, b.UpperBound
	}
	return prevBound
}

// String renders a one-line latency summary for bench output, treating
// samples as seconds.
func (h *Histogram) String() string {
	s := h.Snapshot()
	if s.Count == 0 {
		return "count=0"
	}
	mean := time.Duration(s.Sum / float64(s.Count) * float64(time.Second))
	dur := func(q float64) time.Duration {
		return time.Duration(h.Quantile(q) * float64(time.Second))
	}
	return fmt.Sprintf("count=%d mean=%v p50~%v p90~%v p99~%v",
		s.Count, mean.Round(time.Microsecond), dur(0.50).Round(time.Microsecond),
		dur(0.90).Round(time.Microsecond), dur(0.99).Round(time.Microsecond))
}

// series is one labeled instrument inside a family.
type series struct {
	labels  []Label
	key     string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	ctrFn   func() uint64
	gaugeFn func() float64
}

type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
}

// Registry holds named instrument families. Registration (Counter,
// Gauge, ...) is mutex-guarded and intended for construction time;
// the returned instruments are lock-free. All methods are nil-safe, so
// a layer wired with a nil *Registry records nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// register returns the series for (name, labels), creating family and
// series as needed. Re-registering the same name+labels returns the
// existing series (so a restarted component re-attaches to its
// instruments); registering the same name with a different kind panics
// — that is a programming error, caught at construction time.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %v, re-registered as %v", name, f.kind, kind))
	}
	key := labelKey(sorted)
	s := f.series[key]
	if s == nil {
		s = &series{labels: sorted, key: key}
		f.series[key] = s
	}
	return s
}

// Counter registers (or re-attaches to) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	var c *Counter
	r.attach(name, help, KindCounter, labels, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
		c = s.counter
	})
	return c
}

// Gauge registers (or re-attaches to) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	var g *Gauge
	r.attach(name, help, KindGauge, labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
		g = s.gauge
	})
	return g
}

// Histogram registers (or re-attaches to) a fixed-boundary histogram
// series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	var h *Histogram
	r.attach(name, help, KindHistogram, labels, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
		h = s.hist
	})
	return h
}

// CounterFunc registers a counter series whose value is read from fn at
// Collect() time. fn must be safe to call from any goroutine. Use it to
// promote an existing thread-safe counter (an atomic a layer already
// keeps) without touching that layer's hot path. Re-registering replaces
// the function — a restarted component's series reads its new
// incarnation's state.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.attach(name, help, KindCounter, labels, func(s *series) { s.ctrFn = fn })
}

// GaugeFunc registers a gauge series whose value is read from fn at
// Collect() time. fn must be safe to call from any goroutine.
// Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.attach(name, help, KindGauge, labels, func(s *series) { s.gaugeFn = fn })
}

// attach runs bind on the (name, labels) series under the registry
// mutex, so instrument creation and func replacement never race a
// concurrent Collect (restarted components re-register while scrapes
// run).
func (r *Registry) attach(name, help string, kind Kind, labels []Label, bind func(*series)) {
	s := r.register(name, help, kind, labels)
	r.mu.Lock()
	bind(s)
	r.mu.Unlock()
}

// Sample is one collected series: its labels and either a scalar Value
// (counter, gauge) or a histogram snapshot.
type Sample struct {
	Labels    []Label
	Value     float64
	Histogram *HistogramSnapshot // non-nil for histogram families
}

// Family is one collected metric family, samples sorted by label
// values.
type Family struct {
	Name, Help string
	Kind       Kind
	Samples    []Sample
}

// Collect snapshots every registered series, families sorted by name
// and samples by label key. Function-backed instruments are evaluated
// here. Safe for concurrent use with the hot path; nil-safe.
func (r *Registry) Collect() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		// Copy each series' bindings under the mutex (re-registration
		// replaces func bindings concurrently), then evaluate the
		// functions unlocked — they may take their component's own locks.
		r.mu.Lock()
		ser := make([]series, 0, len(f.series))
		for _, s := range f.series {
			ser = append(ser, *s)
		}
		r.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].key < ser[j].key })
		cf := Family{Name: f.name, Help: f.help, Kind: f.kind}
		for _, s := range ser {
			sm := Sample{Labels: s.labels}
			switch {
			case s.hist != nil:
				snap := s.hist.Snapshot()
				sm.Histogram = &snap
			case s.ctrFn != nil:
				sm.Value = float64(s.ctrFn())
			case s.gaugeFn != nil:
				sm.Value = s.gaugeFn()
			case s.counter != nil:
				sm.Value = float64(s.counter.Value())
			case s.gauge != nil:
				sm.Value = s.gauge.Value()
			}
			cf.Samples = append(cf.Samples, sm)
		}
		out = append(out, cf)
	}
	return out
}
