package obs

import (
	"net/http"
)

// Handler serves the registry in the text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, r.Collect())
	})
}

// ReadyFunc reports readiness: nil means ready, an error names what is
// not (catching up, below session quorum, ...). It must be safe to call
// from any goroutine.
type ReadyFunc func() error

// ReadyHandler serves 200 "ok" when check returns nil and 503 with the
// error text otherwise. A nil check is always ready.
func ReadyHandler(check ReadyFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
}

// NewMux builds the ops mux a node serves on -metrics-addr: /metrics
// (exposition), /healthz (liveness: the process is serving, always
// 200) and /readyz (readiness per check).
func NewMux(r *Registry, ready ReadyFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	}))
	mux.Handle("/readyz", ReadyHandler(ready))
	return mux
}
