package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/des"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/netsim"
	"github.com/sof-repro/sof/internal/types"
)

// zeroParams is a fabric model with no delays and no CPU costs, for tests
// that control costs explicitly.
var zeroParams = netsim.Params{}

func testTopo(t *testing.T) types.Topology {
	t.Helper()
	topo, err := types.NewTopology(types.SC, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func identities(t *testing.T, suite crypto.Suite, n int) map[types.NodeID]*crypto.Identity {
	t.Helper()
	ids := make([]types.NodeID, n)
	for i := range ids {
		ids[i] = types.NodeID(i)
	}
	idents, _, err := crypto.NewDealer(suite, crypto.WithKeyCache(crypto.SharedKeyCache())).Issue(ids)
	if err != nil {
		t.Fatal(err)
	}
	return idents
}

func ping(seq uint64) *message.Request {
	return &message.Request{Client: types.ClientID(0), ClientSeq: seq, Payload: []byte("ping")}
}

// recorder logs every receipt with its virtual/real timestamp.
type recorder struct {
	mu       sync.Mutex
	recvs    []recvRecord
	onRecv   func(env Env, from types.NodeID, m message.Message)
	initDone bool
}

type recvRecord struct {
	from types.NodeID
	seq  uint64
	at   time.Time
}

func (r *recorder) Init(env Env) { r.initDone = true }

func (r *recorder) Receive(env Env, from types.NodeID, m message.Message) {
	req, ok := m.(*message.Request)
	if !ok {
		return
	}
	r.mu.Lock()
	r.recvs = append(r.recvs, recvRecord{from: from, seq: req.ClientSeq, at: env.Now()})
	r.mu.Unlock()
	if r.onRecv != nil {
		r.onRecv(env, from, m)
	}
}

func (r *recorder) records() []recvRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]recvRecord, len(r.recvs))
	copy(out, r.recvs)
	return out
}

func newSim(t *testing.T, params netsim.Params, suite crypto.Suite, procs map[types.NodeID]Process) (*SimCluster, *des.Scheduler) {
	t.Helper()
	sched := des.New(des.Epoch)
	fabric := netsim.New(params, testTopo(t), 7)
	c := NewSimCluster(sched, fabric)
	idents := identities(t, suite, 8)
	for i := 0; i < 8; i++ {
		id := types.NodeID(i)
		p, ok := procs[id]
		if !ok {
			p = &recorder{}
		}
		if err := c.AddNode(id, idents[id], p); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	return c, sched
}

func TestSimDeliveryWithNetworkDelay(t *testing.T) {
	params := netsim.Params{LAN: netsim.LinkParams{BaseDelay: 5 * time.Millisecond}}
	rec := &recorder{}
	sender := &recorder{onRecv: nil}
	c, sched := newSim(t, params, crypto.NewHMACSuite(), map[types.NodeID]Process{0: sender, 1: rec})
	if err := c.Inject(0, func(env Env) { env.Send(1, ping(1)) }); err != nil {
		t.Fatal(err)
	}
	sched.Drain(0)
	got := rec.records()
	if len(got) != 1 {
		t.Fatalf("receiver got %d messages, want 1", len(got))
	}
	elapsed := got[0].at.Sub(des.Epoch)
	if elapsed < 5*time.Millisecond {
		t.Errorf("message arrived after %v, want >= 5ms", elapsed)
	}
	if elapsed > 6*time.Millisecond {
		t.Errorf("message arrived after %v, want ~5ms", elapsed)
	}
}

func TestSimCPUQueueing(t *testing.T) {
	// Each receive charges 10ms; three messages arriving together must be
	// serviced serially: completion times spaced 10ms apart.
	rec := &recorder{}
	rec.onRecv = func(env Env, _ types.NodeID, _ message.Message) {
		env.Charge(10 * time.Millisecond)
		rec.mu.Lock()
		rec.recvs[len(rec.recvs)-1].at = env.Now() // completion time
		rec.mu.Unlock()
	}
	c, sched := newSim(t, zeroParams, crypto.NewHMACSuite(), map[types.NodeID]Process{1: rec})
	_ = c.Inject(0, func(env Env) {
		env.Send(1, ping(1))
		env.Send(1, ping(2))
		env.Send(1, ping(3))
	})
	sched.Drain(0)
	got := rec.records()
	if len(got) != 3 {
		t.Fatalf("got %d receives, want 3", len(got))
	}
	for i, want := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		if d := got[i].at.Sub(des.Epoch); d != want {
			t.Errorf("completion %d at %v, want %v", i, d, want)
		}
	}
}

func TestSimSendsDepartAtChargeTime(t *testing.T) {
	// Sender charges 7ms before sending: the receiver must not see the
	// message before that CPU time has elapsed.
	rec := &recorder{}
	c, sched := newSim(t, zeroParams, crypto.NewHMACSuite(), map[types.NodeID]Process{2: rec})
	_ = c.Inject(0, func(env Env) {
		env.Charge(7 * time.Millisecond)
		env.Send(2, ping(1))
	})
	sched.Drain(0)
	got := rec.records()
	if len(got) != 1 {
		t.Fatalf("got %d, want 1", len(got))
	}
	if d := got[0].at.Sub(des.Epoch); d != 7*time.Millisecond {
		t.Errorf("arrival at %v, want 7ms", d)
	}
}

func TestSimCryptoChargesCosts(t *testing.T) {
	suite, err := crypto.NewModelSuite(crypto.MD5RSA1024)
	if err != nil {
		t.Fatal(err)
	}
	costs := suite.Costs()
	var signT, verifyT time.Duration
	prober := &recorder{}
	prober.onRecv = func(env Env, _ types.NodeID, _ message.Message) {
		before := env.Now()
		digest := env.Digest([]byte("x"))
		sig, err := env.Sign(digest)
		if err != nil {
			t.Errorf("Sign: %v", err)
		}
		signT = env.Now().Sub(before)
		before = env.Now()
		if err := env.Verify(env.ID(), digest, sig); err != nil {
			t.Errorf("Verify: %v", err)
		}
		verifyT = env.Now().Sub(before)
	}
	c, sched := newSim(t, zeroParams, suite, map[types.NodeID]Process{3: prober})
	_ = c.Inject(0, func(env Env) { env.Send(3, ping(1)) })
	sched.Drain(0)
	if signT < costs.Sign {
		t.Errorf("sign charged %v, want >= %v", signT, costs.Sign)
	}
	if verifyT != costs.Verify {
		t.Errorf("verify charged %v, want %v", verifyT, costs.Verify)
	}
}

func TestSimTimer(t *testing.T) {
	var firedAt time.Time
	var canceled bool
	p := &recorder{}
	p.onRecv = func(env Env, _ types.NodeID, _ message.Message) {
		env.SetTimer(25*time.Millisecond, func() { firedAt = env.Now() })
		tm := env.SetTimer(5*time.Millisecond, func() { canceled = true })
		if !tm.Stop() {
			t.Error("Stop() = false for pending timer")
		}
	}
	c, sched := newSim(t, zeroParams, crypto.NewHMACSuite(), map[types.NodeID]Process{1: p})
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(1)) })
	sched.Drain(0)
	if canceled {
		t.Error("stopped timer fired")
	}
	if d := firedAt.Sub(des.Epoch); d != 25*time.Millisecond {
		t.Errorf("timer fired at %v, want 25ms", d)
	}
}

func TestSimCrashStopsProcessing(t *testing.T) {
	rec := &recorder{}
	c, sched := newSim(t, zeroParams, crypto.NewHMACSuite(), map[types.NodeID]Process{1: rec})
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(1)) })
	sched.Drain(0)
	c.Crash(1)
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(2)) })
	sched.Drain(0)
	if got := rec.records(); len(got) != 1 {
		t.Errorf("crashed node processed %d messages, want 1", len(got))
	}
}

func TestSimMulticastIncludingSelf(t *testing.T) {
	recs := map[types.NodeID]*recorder{}
	procs := map[types.NodeID]Process{}
	for i := 0; i < 3; i++ {
		r := &recorder{}
		recs[types.NodeID(i)] = r
		procs[types.NodeID(i)] = r
	}
	c, sched := newSim(t, zeroParams, crypto.NewHMACSuite(), procs)
	_ = c.Inject(0, func(env Env) {
		env.Multicast([]types.NodeID{0, 1, 2}, ping(9))
	})
	sched.Drain(0)
	for id, r := range recs {
		if got := r.records(); len(got) != 1 || got[0].seq != 9 {
			t.Errorf("node %v got %v, want one ping(9)", id, got)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []string {
		var trace []string
		procs := map[types.NodeID]Process{}
		for i := 0; i < 4; i++ {
			id := types.NodeID(i)
			r := &recorder{}
			r.onRecv = func(env Env, from types.NodeID, m message.Message) {
				req := m.(*message.Request)
				trace = append(trace, fmt.Sprintf("%v<-%v#%d@%v", env.ID(), from, req.ClientSeq, env.Now().Sub(des.Epoch)))
				if req.ClientSeq < 20 {
					env.Multicast([]types.NodeID{0, 1, 2, 3}, ping(req.ClientSeq+1))
				}
			}
			procs[id] = r
		}
		params := netsim.LANDefaults()
		sched := des.New(des.Epoch)
		topo, _ := types.NewTopology(types.SC, 2)
		fabric := netsim.New(params, topo, 99)
		c := NewSimCluster(sched, fabric)
		idents := identities(t, crypto.NewHMACSuite(), 8)
		for i := 0; i < 4; i++ {
			if err := c.AddNode(types.NodeID(i), idents[types.NodeID(i)], procs[types.NodeID(i)]); err != nil {
				t.Fatal(err)
			}
		}
		c.Start()
		_ = c.Inject(0, func(env Env) { env.Send(1, ping(1)) })
		sched.Drain(200000)
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) == 0 || len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestSimRejectsDuplicateAndLateNodes(t *testing.T) {
	sched := des.New(des.Epoch)
	c := NewSimCluster(sched, netsim.New(zeroParams, testTopo(t), 1))
	idents := identities(t, crypto.NewHMACSuite(), 2)
	if err := c.AddNode(0, idents[0], &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(0, idents[0], &recorder{}); err == nil {
		t.Error("duplicate AddNode: want error")
	}
	c.Start()
	if err := c.AddNode(1, idents[1], &recorder{}); err == nil {
		t.Error("AddNode after Start: want error")
	}
	if err := c.Inject(42, func(Env) {}); err == nil {
		t.Error("Inject unknown node: want error")
	}
}

// --- live runtime ---

func newLive(t *testing.T, procs map[types.NodeID]Process) *LiveCluster {
	t.Helper()
	c := NewLiveCluster(nil)
	idents := identities(t, crypto.NewHMACSuite(), 8)
	for i := 0; i < 8; i++ {
		id := types.NodeID(i)
		p, ok := procs[id]
		if !ok {
			p = &recorder{}
		}
		if err := c.AddNode(id, idents[id], p); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLiveDelivery(t *testing.T) {
	rec := &recorder{}
	c := newLive(t, map[types.NodeID]Process{1: rec})
	if err := c.Inject(0, func(env Env) { env.Send(1, ping(1)) }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.records()) == 1 }, "delivery")
	if got := rec.records(); got[0].from != 0 || got[0].seq != 1 {
		t.Errorf("got %+v", got[0])
	}
}

func TestLivePingPong(t *testing.T) {
	const rounds = 50
	done := make(chan struct{})
	a := &recorder{}
	a.onRecv = func(env Env, from types.NodeID, m message.Message) {
		req := m.(*message.Request)
		if req.ClientSeq >= rounds {
			close(done)
			return
		}
		env.Send(from, ping(req.ClientSeq+1))
	}
	b := &recorder{}
	b.onRecv = func(env Env, from types.NodeID, m message.Message) {
		req := m.(*message.Request)
		env.Send(from, ping(req.ClientSeq+1))
	}
	c := newLive(t, map[types.NodeID]Process{0: a, 1: b})
	_ = c.Inject(1, func(env Env) { env.Send(0, ping(0)) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ping-pong did not complete")
	}
}

func TestLiveTimerFiresAndStops(t *testing.T) {
	fired := make(chan struct{})
	var stopped Timer
	var stoppedFired sync.Mutex
	sawStopped := false
	p := &recorder{}
	p.onRecv = func(env Env, _ types.NodeID, _ message.Message) {
		env.SetTimer(10*time.Millisecond, func() { close(fired) })
		stopped = env.SetTimer(time.Millisecond, func() {
			stoppedFired.Lock()
			sawStopped = true
			stoppedFired.Unlock()
		})
		stopped.Stop()
	}
	c := newLive(t, map[types.NodeID]Process{1: p})
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(1)) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer did not fire")
	}
	time.Sleep(20 * time.Millisecond)
	stoppedFired.Lock()
	defer stoppedFired.Unlock()
	if sawStopped {
		t.Error("stopped timer fired")
	}
}

func TestLiveCrash(t *testing.T) {
	rec := &recorder{}
	c := newLive(t, map[types.NodeID]Process{1: rec})
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(1)) })
	waitFor(t, func() bool { return len(rec.records()) == 1 }, "first delivery")
	c.Crash(1)
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(2)) })
	time.Sleep(30 * time.Millisecond)
	if got := rec.records(); len(got) != 1 {
		t.Errorf("crashed node processed %d messages", len(got))
	}
}

func TestLiveConcurrentSenders(t *testing.T) {
	const senders, each = 6, 40
	rec := &recorder{}
	c := newLive(t, map[types.NodeID]Process{7: rec})
	for s := 0; s < senders; s++ {
		s := s
		go func() {
			for i := 0; i < each; i++ {
				_ = c.Inject(types.NodeID(s), func(env Env) {
					env.Send(7, ping(uint64(i)))
				})
			}
		}()
	}
	waitFor(t, func() bool { return len(rec.records()) == senders*each }, "all deliveries")
}

func TestLiveArtificialDelay(t *testing.T) {
	params := netsim.Params{LAN: netsim.LinkParams{BaseDelay: 30 * time.Millisecond}}
	fabric := netsim.New(params, testTopo(t), 5)
	c := NewLiveCluster(fabric)
	idents := identities(t, crypto.NewHMACSuite(), 2)
	rec := &recorder{}
	if err := c.AddNode(0, idents[0], &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(1, idents[1], rec); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	start := time.Now()
	_ = c.Inject(0, func(env Env) { env.Send(1, ping(1)) })
	waitFor(t, func() bool { return len(rec.records()) == 1 }, "delayed delivery")
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~30ms", elapsed)
	}
}
