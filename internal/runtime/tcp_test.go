package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// TestTCPMulticastMarshalsOnce is the TCP-substrate twin of
// TestLiveMulticastMarshalsOnce: an n-way fan-out over real sockets must
// perform exactly one Marshal, with the cached encoding shared by every
// peer queue (and the self-destination delivered decoded).
func TestTCPMulticastMarshalsOnce(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 3)
	c := NewTCPCluster()
	var calls, got int32
	for id := range idents {
		if err := c.AddNode(id, idents[id], &sinkProc{got: &got}); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	defer c.Stop()

	msg := &countingMsg{inner: &message.Request{Client: 0, ClientSeq: 1, Payload: []byte("x")}, calls: &calls}
	if err := c.Inject(0, func(env Env) {
		env.Multicast([]types.NodeID{0, 1, 2}, msg)
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for atomic.LoadInt32(&got) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := atomic.LoadInt32(&got); n != 3 {
		t.Errorf("TCP Multicast delivered %d times, want 3", n)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("TCP Multicast marshalled %d times for 3 destinations, want 1", n)
	}
}

// TestTCPSelfLoopbackSkipsDecode checks that a self-addressed message
// skips the socket and arrives as the identical decoded value.
func TestTCPSelfLoopbackSkipsDecode(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 1)
	c := NewTCPCluster()
	var gotSame int32
	sent := &message.Request{Client: 0, ClientSeq: 9, Payload: []byte("self")}
	if err := c.AddNode(0, idents[0], &identityCheckProc{want: sent, same: &gotSame}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if err := c.Inject(0, func(env Env) { env.Send(0, sent) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&gotSame) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&gotSame) != 1 {
		t.Error("TCP self-loopback did not deliver the identical message value")
	}
}

// TestTCPClusterCrashSilences checks Crash makes a node stop emitting and
// processing, as on the other substrates.
func TestTCPClusterCrashSilences(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 2)
	c := NewTCPCluster()
	var got int32
	if err := c.AddNode(0, idents[0], &sinkProc{got: new(int32)}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(1, idents[1], &sinkProc{got: &got}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	c.Crash(0)
	if err := c.Inject(0, func(env Env) { env.Send(1, ping(1)) }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if n := atomic.LoadInt32(&got); n != 0 {
		t.Errorf("crashed node still delivered %d messages", n)
	}
}
