// Package runtime executes protocol processes on three substrates: a
// virtual-time discrete-event simulator (SimCluster) that regenerates the
// paper's figures with calibrated cost models, a real-time goroutine
// runtime (LiveCluster) that runs the identical protocol code on actual
// clocks and cryptography, and a TCP runtime (TCPNode, TCPCluster) that
// runs it over real sockets via internal/tcpnet — either a whole cluster
// on loopback or one process per OS process, the way the paper's LAN
// testbed ran separate machines.
//
// Protocol code is written as single-threaded reactors against the Env
// interface; all concurrency lives here. A process's Init, Receive and
// timer callbacks are never invoked concurrently with each other.
//
// All three substrates share the encode-once contract: Send and Multicast
// consume the message's memoized wire encoding, so an n-way fan-out costs
// a single Marshal, and self-addressed messages are delivered decoded
// without touching the wire.
//
// The two real-time substrates are a single code path: the shared
// delivery engine (engine.go) owns the event queue, its draining
// goroutine, the encode-once fan-out, the decoded self-loopback, timers
// and the crypto-backed Env surface. LiveCluster nodes and TCP endpoints
// embed it and supply only their delivery medium — fabric-delayed
// in-process handoff vs. tcpnet peer queues — so transport features like
// the authenticated session layer plug in beneath the engine without the
// substrates diverging.
package runtime
