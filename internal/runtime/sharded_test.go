package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// groupSink counts deliveries per hosting group, recording the sequence
// numbers it saw so cross-group leakage is attributable.
type groupSink struct {
	got  *int32
	seqs chan uint64
}

func (p *groupSink) Init(Env) {}
func (p *groupSink) Receive(_ Env, _ types.NodeID, m message.Message) {
	atomic.AddInt32(p.got, 1)
	if req, ok := m.(*message.Request); ok && p.seqs != nil {
		select {
		case p.seqs <- req.ClientSeq:
		default:
		}
	}
}

// TestShardedTCPGroupIsolation: two sharded nodes, two groups over ONE
// transport each. A message sent from node 0's group-1 core must arrive
// only at node 1's group-1 core, never at group 0 — the one-byte prefix
// is the only demultiplexer, so this is the wire-format acceptance test.
func TestShardedTCPGroupIsolation(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 2)
	c := NewTCPCluster()
	var g0A, g1A, g0B, g1B int32
	if err := c.AddShardedNode(0, idents[0], []Process{
		&groupSink{got: &g0A}, &groupSink{got: &g1A},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddShardedNode(1, idents[1], []Process{
		&groupSink{got: &g0B}, &groupSink{got: &g1B},
	}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	if err := c.InjectGroup(0, 1, func(env Env) { env.Send(1, ping(7)) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for atomic.LoadInt32(&g1B) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&g1B) != 1 {
		t.Fatalf("group-1 frame not delivered to node 1's group-1 core")
	}
	time.Sleep(100 * time.Millisecond) // would-be leakage window
	if n := atomic.LoadInt32(&g0B); n != 0 {
		t.Errorf("group-1 frame leaked into node 1's group-0 core (%d deliveries)", n)
	}
	if n := atomic.LoadInt32(&g0A) + atomic.LoadInt32(&g1A); n != 0 {
		t.Errorf("sender's own cores saw %d deliveries for a peer-addressed send", n)
	}

	// The reverse direction through the other group, via multicast with a
	// self-destination: self goes over the decoded loopback, the peer over
	// the prefixed wire.
	if err := c.InjectGroup(1, 0, func(env Env) {
		env.Multicast([]types.NodeID{0, 1}, ping(8))
	}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for (atomic.LoadInt32(&g0A) == 0 || atomic.LoadInt32(&g0B) == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&g0A) != 1 || atomic.LoadInt32(&g0B) != 1 {
		t.Fatalf("group-0 multicast: node0/g0=%d node1/g0=%d, want 1/1",
			atomic.LoadInt32(&g0A), atomic.LoadInt32(&g0B))
	}
	if n := atomic.LoadInt32(&g1A); n != 0 {
		t.Errorf("group-0 multicast leaked into node 0's group-1 core (%d)", n)
	}
}

// TestShardedTCPSharesOneTransport pins the resource model: N groups on
// one node mean ONE listener/transport, not N — the whole point of
// multiplexing groups behind a shared session layer.
func TestShardedTCPSharesOneTransport(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 1)
	c := NewTCPCluster()
	if err := c.AddShardedNode(0, idents[0], []Process{
		&groupSink{got: new(int32)}, &groupSink{got: new(int32)}, &groupSink{got: new(int32)},
	}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	n, ok := c.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	if n.Transport() == nil || n.Addr() == "" {
		t.Fatal("sharded node has no transport")
	}
	for g := 0; g < 3; g++ {
		if n.core(g) == nil {
			t.Fatalf("group %d core missing", g)
		}
		if n.core(g).n.tr != n.Transport() {
			t.Fatalf("group %d core does not share the node transport", g)
		}
	}
	if n.core(3) != nil {
		t.Error("core(3) exists for a 3-group node")
	}
	if err := c.InjectGroup(0, 3, func(Env) {}); err == nil {
		t.Error("InjectGroup accepted an unhosted group")
	}
}

// TestShardedTCPRestart: a killed sharded node restarts with fresh group
// processes on the same address and resumes receiving per group.
func TestShardedTCPRestart(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 2)
	c := NewTCPCluster()
	var before, after int32
	if err := c.AddShardedNode(0, idents[0], []Process{
		&groupSink{got: new(int32)}, &groupSink{got: &before},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddShardedNode(1, idents[1], []Process{
		&groupSink{got: new(int32)}, &groupSink{got: new(int32)},
	}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartSharded(0, idents[0], []Process{
		&groupSink{got: new(int32)}, &groupSink{got: &after},
	}); err != nil {
		t.Fatal(err)
	}
	// The peer's redial loop finds the successor; keep sending until one
	// lands.
	deadline := time.Now().Add(10 * time.Second)
	for atomic.LoadInt32(&after) == 0 && time.Now().Before(deadline) {
		if err := c.InjectGroup(1, 1, func(env Env) { env.Send(0, ping(1)) }); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if atomic.LoadInt32(&after) == 0 {
		t.Fatal("restarted sharded node never received on group 1")
	}
	if atomic.LoadInt32(&before) != 0 {
		t.Error("dead incarnation's group core received post-restart traffic")
	}
}
