package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/des"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/netsim"
	"github.com/sof-repro/sof/internal/types"
)

// countingMsg counts Marshal calls without memoizing, so it detects any
// runtime path that re-marshals per destination.
type countingMsg struct {
	inner *message.Request
	calls *int32
}

func (m *countingMsg) Type() message.Type { return m.inner.Type() }

func (m *countingMsg) Marshal() []byte {
	atomic.AddInt32(m.calls, 1)
	// Rebuild the encoding each call (bypass the inner cache) so every
	// runtime-layer Marshal costs one observable call.
	cp := *m.inner
	cp2 := message.Request{Client: cp.Client, ClientSeq: cp.ClientSeq, Payload: cp.Payload, Sig: cp.Sig}
	return cp2.Marshal()
}

type sinkProc struct{ got *int32 }

func (p *sinkProc) Init(Env) {}
func (p *sinkProc) Receive(_ Env, _ types.NodeID, _ message.Message) {
	atomic.AddInt32(p.got, 1)
}

// TestSimMulticastMarshalsOnce is the regression test for the zero-copy
// multicast path: n destinations, one encoding.
func TestSimMulticastMarshalsOnce(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 3)
	sched := des.New(des.Epoch)
	c := NewSimCluster(sched, netsim.New(zeroParams, testTopo(t), 1))
	var calls, got int32
	for id := range idents {
		if err := c.AddNode(id, idents[id], &sinkProc{got: &got}); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	sched.RunFor(time.Millisecond)

	msg := &countingMsg{inner: &message.Request{Client: 0, ClientSeq: 1, Payload: []byte("x")}, calls: &calls}
	if err := c.Inject(0, func(env Env) {
		env.Multicast([]types.NodeID{0, 1, 2}, msg)
	}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Second)
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("sim Multicast marshalled %d times for 3 destinations, want 1", n)
	}
	if n := atomic.LoadInt32(&got); n != 3 {
		t.Errorf("sim Multicast delivered %d times, want 3", n)
	}
}

// TestLiveMulticastMarshalsOnce covers the real-time substrate, including
// the self-loopback destination (which must not even re-decode).
func TestLiveMulticastMarshalsOnce(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 3)
	c := NewLiveCluster(nil)
	var calls, got int32
	for id := range idents {
		if err := c.AddNode(id, idents[id], &sinkProc{got: &got}); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	defer c.Stop()

	msg := &countingMsg{inner: &message.Request{Client: 0, ClientSeq: 1, Payload: []byte("x")}, calls: &calls}
	if err := c.Inject(0, func(env Env) {
		env.Multicast([]types.NodeID{0, 1, 2}, msg)
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&got) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("live Multicast marshalled %d times for 3 destinations, want 1", n)
	}
	if n := atomic.LoadInt32(&got); n != 3 {
		t.Errorf("live Multicast delivered %d times, want 3", n)
	}
}

// TestLiveSelfLoopbackSkipsDecode checks that a self-addressed message is
// delivered as the same decoded value, not re-decoded from the wire.
func TestLiveSelfLoopbackSkipsDecode(t *testing.T) {
	idents := identities(t, crypto.NewHMACSuite(), 1)
	c := NewLiveCluster(nil)
	var gotSame int32
	sent := &message.Request{Client: 0, ClientSeq: 9, Payload: []byte("self")}
	proc := &identityCheckProc{want: sent, same: &gotSame}
	if err := c.AddNode(0, idents[0], proc); err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if err := c.Inject(0, func(env Env) { env.Send(0, sent) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&gotSame) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&gotSame) != 1 {
		t.Error("self-loopback did not deliver the identical message value")
	}
}

type identityCheckProc struct {
	want message.Message
	same *int32
}

func (p *identityCheckProc) Init(Env) {}
func (p *identityCheckProc) Receive(_ Env, _ types.NodeID, m message.Message) {
	if m == p.want {
		atomic.StoreInt32(p.same, 1)
	}
}
