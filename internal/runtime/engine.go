package runtime

import (
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// liveEvent is one unit of work in a real-time node's event loop: a
// delivered wire message (raw != nil), an already-decoded self-loopback
// message (msg != nil), or a callback.
type liveEvent struct {
	from types.NodeID
	raw  []byte
	msg  message.Message
	fn   func()
}

// engine is the delivery core shared by every real-time substrate
// (in-process LiveCluster nodes and TCP endpoints): a condition-variable
// event queue drained by one goroutine that serialises Init, Receive and
// timer callbacks, the encode-once fan-out, the decoded self-loopback,
// and the identity-backed Env surface (time, timers, crypto, logging).
// Substrates embed it and add only what actually differs — how a raw
// encoding crosses to another node (fabric delays vs. peer send queues).
//
// env points back at the embedding substrate node, so protocol callbacks
// receive the full Env (the engine itself has no Send/Multicast).
type engine struct {
	id    types.NodeID
	ident *crypto.Identity
	proc  Process
	env   Env
	logf  func(format string, args ...any)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []liveEvent
	closed bool
	down   bool
}

// attach wires the engine to its owner; env is the embedding node.
func (e *engine) attach(id types.NodeID, ident *crypto.Identity, proc Process, env Env,
	logf func(format string, args ...any)) {
	e.id, e.ident, e.proc, e.env, e.logf = id, ident, proc, env, logf
	e.cond = sync.NewCond(&e.mu)
}

func (e *engine) enqueue(ev liveEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.queue = append(e.queue, ev)
	e.cond.Signal()
}

// enqueueInit schedules the process's Init inside the event loop.
func (e *engine) enqueueInit() {
	e.enqueue(liveEvent{fn: func() { e.proc.Init(e.env) }})
}

// startLoop launches the event loop under wg with Init as the first queued
// event. Substrates must call it BEFORE opening their inbound path
// (transport handler, fabric delivery): the queue is FIFO, so anything a
// peer delivers afterwards — including a session layer's recovered-frame
// replay the instant the first handshake completes — is processed after
// Init, never ahead of it. Restarted nodes depend on this ordering: the
// replay of their dead incarnation's window must meet an initialised
// process.
func (e *engine) startLoop(wg *sync.WaitGroup) {
	e.enqueueInit()
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.loop()
	}()
}

// loopback delivers a self-addressed message without touching the wire:
// messages are immutable and the event loop serialises handling, so the
// decoded form is handed over as-is.
func (e *engine) loopback(m message.Message) {
	e.enqueue(liveEvent{from: e.id, msg: m})
}

// closeLoop stops the event loop; events still queued are dropped.
func (e *engine) closeLoop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	e.cond.Broadcast()
}

func (e *engine) setDown() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.down = true
}

func (e *engine) isDown() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down
}

// loop drains the event queue, decoding wire payloads and dispatching to
// the process until closeLoop.
func (e *engine) loop() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		ev := e.queue[0]
		e.queue = e.queue[1:]
		down := e.down
		e.mu.Unlock()

		if down {
			continue
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.msg != nil {
			e.proc.Receive(e.env, ev.from, ev.msg)
			continue
		}
		m, err := message.Decode(ev.raw)
		if err != nil {
			e.Logf("dropping undecodable message from %v: %v", ev.from, err)
			continue
		}
		e.proc.Receive(e.env, ev.from, m)
	}
}

// fanOut is the encode-once fan-out: m is marshalled exactly once (and
// concrete message types additionally cache the encoding on the message
// itself) and deliver is invoked for every destination with the shared
// encoding. deliver decides how the bytes cross — including how a
// self-addressed copy bypasses the wire.
func (e *engine) fanOut(tos []types.NodeID, m message.Message, deliver func(to types.NodeID, m message.Message, raw []byte)) {
	if e.isDown() {
		return
	}
	raw := m.Marshal()
	for _, to := range tos {
		deliver(to, m, raw)
	}
}

// ID implements Env.
func (e *engine) ID() types.NodeID { return e.id }

// Now implements Env.
func (e *engine) Now() time.Time { return time.Now() }

// Charge implements Env (no-op: live operations take real time).
func (e *engine) Charge(time.Duration) {}

// SetTimer implements Env.
func (e *engine) SetTimer(d time.Duration, fn func()) Timer {
	lt := &liveTimer{}
	lt.timer = time.AfterFunc(d, func() {
		e.enqueue(liveEvent{fn: func() {
			if lt.expired() {
				return
			}
			fn()
		}})
	})
	return lt
}

// Digest implements Env.
func (e *engine) Digest(data []byte) []byte { return e.ident.Digest(data) }

// Sign implements Env.
func (e *engine) Sign(digest []byte) (crypto.Signature, error) { return e.ident.Sign(digest) }

// Verify implements Env.
func (e *engine) Verify(signer types.NodeID, digest []byte, sig crypto.Signature) error {
	return e.ident.Verify(signer, digest, sig)
}

// Logf implements Env.
func (e *engine) Logf(format string, args ...any) { e.logf(format, args...) }

// liveTimer implements Timer over time.Timer, with a stopped flag that
// also wins the race where the callback is already queued in the loop.
type liveTimer struct {
	mu      sync.Mutex
	stopped bool
	timer   *time.Timer
}

// Stop implements Timer.
func (t *liveTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	t.timer.Stop()
	return true
}

func (t *liveTimer) expired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return true
	}
	t.stopped = true
	return false
}
