package runtime

import (
	"fmt"
	"io"
	"log"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/des"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/netsim"
	"github.com/sof-repro/sof/internal/types"
)

// SimCluster runs processes in virtual time on a discrete-event scheduler.
//
// CPU model: each node is an exclusive server. Handling a delivery (or a
// timer) begins at max(arrival, busyUntil) and occupies the CPU for the
// modelled cost of the event — a per-message receive cost plus whatever the
// handler charges through cryptographic operations and explicit Charge
// calls. Messages sent during the event depart at the charged time of the
// Send call, so saturation and queueing delays emerge naturally when the
// offered load exceeds CPU capacity, which is exactly the effect the
// paper's Figures 4 and 5 measure.
//
// SimCluster is single-threaded and not safe for concurrent use.
type SimCluster struct {
	sched   *des.Scheduler
	fabric  *netsim.Fabric
	nodes   map[types.NodeID]*simNode
	order   []types.NodeID
	logger  *log.Logger
	started bool
}

// NewSimCluster returns an empty simulated cluster.
func NewSimCluster(sched *des.Scheduler, fabric *netsim.Fabric) *SimCluster {
	return &SimCluster{
		sched:  sched,
		fabric: fabric,
		nodes:  make(map[types.NodeID]*simNode),
		logger: log.New(io.Discard, "", 0),
	}
}

// SetLogger directs process debug logs to l (default: discarded).
func (c *SimCluster) SetLogger(l *log.Logger) { c.logger = l }

// Scheduler returns the underlying scheduler.
func (c *SimCluster) Scheduler() *des.Scheduler { return c.sched }

// Fabric returns the network fabric.
func (c *SimCluster) Fabric() *netsim.Fabric { return c.fabric }

// AddNode registers a process before Start.
func (c *SimCluster) AddNode(id types.NodeID, ident *crypto.Identity, proc Process) error {
	if c.started {
		return fmt.Errorf("runtime: AddNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n := &simNode{c: c, id: id, ident: ident, proc: proc, busyUntil: c.sched.Now()}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// Start schedules every node's Init (in registration order) at the current
// virtual time.
func (c *SimCluster) Start() {
	c.started = true
	for _, id := range c.order {
		n := c.nodes[id]
		c.sched.Post(c.sched.Now(), func() {
			n.runEvent(0, func() { n.proc.Init(n) })
		})
	}
}

// Crash makes a node stop processing and emitting (a node-level crash;
// in-flight messages to it are discarded on arrival).
func (c *SimCluster) Crash(id types.NodeID) {
	if n, ok := c.nodes[id]; ok {
		n.down = true
	}
}

// Env returns the environment of a node, letting test harnesses act as the
// node (e.g. to inject a fault from inside its event loop).
func (c *SimCluster) Env(id types.NodeID) (Env, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Inject schedules fn to run inside id's event loop at the current virtual
// time (fault injectors use this to act "as" the node).
func (c *SimCluster) Inject(id types.NodeID, fn func(env Env)) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("runtime: no node %v", id)
	}
	c.sched.Post(c.sched.Now(), func() {
		if n.down {
			return
		}
		n.runEvent(0, func() { fn(n) })
	})
	return nil
}

// simNode implements Env in virtual time.
type simNode struct {
	c     *SimCluster
	id    types.NodeID
	ident *crypto.Identity
	proc  Process
	down  bool

	busyUntil time.Time
	inEvent   bool
	start     time.Time
	charged   time.Duration
}

var _ Env = (*simNode)(nil)

// runEvent executes fn as one CPU-exclusive event with the given base cost.
func (n *simNode) runEvent(baseCost time.Duration, fn func()) {
	n.start = maxTime(n.c.sched.Now(), n.busyUntil)
	n.charged = baseCost
	n.inEvent = true
	fn()
	n.inEvent = false
	n.busyUntil = n.start.Add(n.charged)
}

// ID implements Env.
func (n *simNode) ID() types.NodeID { return n.id }

// Now implements Env: virtual time including CPU charged in this event.
func (n *simNode) Now() time.Time {
	if n.inEvent {
		return n.start.Add(n.charged)
	}
	return n.c.sched.Now()
}

// Charge implements Env.
func (n *simNode) Charge(d time.Duration) {
	if d > 0 {
		n.charged += d
	}
}

// Send implements Env.
func (n *simNode) Send(to types.NodeID, m message.Message) {
	n.transmit(to, m, len(m.Marshal()), true)
}

// Multicast implements Env.
func (n *simNode) Multicast(tos []types.NodeID, m message.Message) {
	size := len(m.Marshal())
	for _, to := range tos {
		n.transmit(to, m, size, true)
	}
}

func (n *simNode) transmit(to types.NodeID, m message.Message, size int, record bool) {
	params := n.c.fabric.Params()
	if to != n.id {
		// Sender-side CPU: marshalling and stack costs per copy.
		n.Charge(params.SendCost(size))
		if record {
			n.c.fabric.Record(m.Type(), size)
		}
	}
	delay, ok := n.c.fabric.Delay(n.id, to, size)
	if !ok {
		return // link cut or endpoint isolated
	}
	target, exists := n.c.nodes[to]
	if !exists {
		return
	}
	from := n.id
	departure := n.Now()
	arrival := departure.Add(delay)
	recvCost := params.RecvCost(size)
	if to == n.id {
		recvCost = 0 // local loopback, no stack traversal
	}
	// Post, not At: deliveries are fire-and-forget, so the scheduler can
	// recycle the event instead of allocating one per message.
	n.c.sched.Post(arrival, func() {
		if target.down {
			return
		}
		target.runEvent(recvCost, func() { target.proc.Receive(target, from, m) })
	})
}

// simTimer wraps a scheduler event.
type simTimer struct {
	ev *des.Event
}

// Stop implements Timer.
func (t *simTimer) Stop() bool { return t.ev.Cancel() }

// SetTimer implements Env.
func (n *simNode) SetTimer(d time.Duration, fn func()) Timer {
	at := n.Now().Add(d)
	ev := n.c.sched.At(at, func() {
		if n.down {
			return
		}
		n.runEvent(0, fn)
	})
	return &simTimer{ev: ev}
}

// Digest implements Env, charging the modelled digest cost.
func (n *simNode) Digest(data []byte) []byte {
	n.Charge(n.ident.Suite().Costs().DigestCost(len(data)))
	return n.ident.Digest(data)
}

// Sign implements Env, charging the modelled signing cost.
func (n *simNode) Sign(digest []byte) (crypto.Signature, error) {
	n.Charge(n.ident.Suite().Costs().Sign)
	return n.ident.Sign(digest)
}

// Verify implements Env, charging the modelled verification cost.
func (n *simNode) Verify(signer types.NodeID, digest []byte, sig crypto.Signature) error {
	n.Charge(n.ident.Suite().Costs().Verify)
	return n.ident.Verify(signer, digest, sig)
}

// Logf implements Env.
func (n *simNode) Logf(format string, args ...any) {
	n.c.logger.Printf("[%12s %v] %s",
		n.Now().Sub(des.Epoch), n.id, fmt.Sprintf(format, args...))
}
