package runtime

import (
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// Env is the execution environment handed to a process. Implementations
// charge modelled CPU costs for cryptographic operations in simulation;
// in the live runtime those operations simply take real time.
type Env interface {
	// ID returns the process's own identifier.
	ID() types.NodeID
	// Now returns the current (virtual or real) time, including CPU time
	// charged so far while handling the current event.
	Now() time.Time
	// Send transmits m to one destination. Messages are immutable once
	// sent; neither sender nor receivers may modify them.
	Send(to types.NodeID, m message.Message)
	// Multicast transmits m to every destination, marshalling once.
	Multicast(tos []types.NodeID, m message.Message)
	// SetTimer schedules fn to run in the process's event loop after d.
	SetTimer(d time.Duration, fn func()) Timer
	// Charge adds modelled CPU time to the current event (no-op live).
	Charge(d time.Duration)
	// Digest computes the suite digest of data (charged in simulation).
	Digest(data []byte) []byte
	// Sign signs a digest as this process (charged in simulation).
	Sign(digest []byte) (crypto.Signature, error)
	// Verify checks a signature by signer (charged in simulation).
	Verify(signer types.NodeID, digest []byte, sig crypto.Signature) error
	// Logf emits a debug log line tagged with the process and time.
	Logf(format string, args ...any)
}

// Env must satisfy the message package's signing interfaces so protocol
// code can pass it directly to message verification helpers.
var _ message.SignerVerifier = (Env)(nil)

// Timer is a cancellable timer handle.
type Timer interface {
	// Stop cancels the timer; it reports whether the callback was
	// prevented from running.
	Stop() bool
}

// Process is a deterministic protocol reactor.
type Process interface {
	// Init runs once when the cluster starts, before any delivery.
	Init(env Env)
	// Receive handles one delivered message.
	Receive(env Env, from types.NodeID, m message.Message)
}

// maxTime returns the later of two times.
func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
