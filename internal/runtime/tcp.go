package runtime

import (
	"fmt"
	"io"
	"log"
	"sync"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/tcpnet"
	"github.com/sof-repro/sof/internal/types"
)

// TCPNode runs one protocol process as a real TCP endpoint: inbound frames
// from a tcpnet.Transport feed the shared delivery engine's event loop,
// and outbound sends go through the transport's per-peer queues. It is the
// third substrate — the same reactor code that runs on the simulator and
// the in-process live runtime runs here over real sockets.
//
// The outbound path is encode-once: Send and Multicast hand the
// transport the message's cached wire encoding (message.Message.Marshal
// memoizes it), so an n-way fan-out costs one Marshal and zero copies,
// exactly like the in-process runtimes. Self-addressed messages skip the
// wire and are delivered decoded. With tcpnet.Options.Session the frames
// beneath this node are sequenced, HMAC-authenticated and resumable; the
// engine above is oblivious.
type TCPNode struct {
	engine
	tr *tcpnet.Transport
	wg sync.WaitGroup
}

var _ Env = (*TCPNode)(nil)

// NewTCPNode binds a TCP endpoint for proc on addr. peers maps every other
// process (and known client) ID to its address; it may be nil if supplied
// later via Transport().SetPeers before the node starts sending. Call
// Start to begin serving and Stop to shut down.
func NewTCPNode(id types.NodeID, addr string, ident *crypto.Identity, proc Process,
	peers map[types.NodeID]string, logger *log.Logger, opts tcpnet.Options) (*TCPNode, error) {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	tr, err := tcpnet.Listen(id, addr, peers, logger, opts)
	if err != nil {
		return nil, err
	}
	n := &TCPNode{tr: tr}
	n.attach(id, ident, proc, n, func(format string, args ...any) {
		logger.Printf("[%v] %s", id, fmt.Sprintf(format, args...))
	})
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.tr.Addr() }

// Transport exposes the underlying transport (peer wiring, stats,
// connection fault injection).
func (n *TCPNode) Transport() *tcpnet.Transport { return n.tr }

// Fatal reports an unrecoverable transport failure; callers that own the
// OS process (cmd/sofnode) should treat it as reason to exit non-zero.
func (n *TCPNode) Fatal() <-chan error { return n.tr.Fatal() }

// Start launches the event loop with the process's Init as its first
// event, then begins accepting connections — in that order, so inbound
// frames (and a recovered session's replay, which can arrive the moment
// the transport is up) are never processed ahead of Init.
func (n *TCPNode) Start() {
	n.startLoop(&n.wg)
	n.tr.Start(func(from types.NodeID, frame []byte) {
		n.enqueue(liveEvent{from: from, raw: frame})
	})
}

// Stop closes the transport and the event loop and waits for both.
func (n *TCPNode) Stop() {
	n.tr.Close()
	n.closeLoop()
	n.wg.Wait()
}

// Send implements Env. Self-addressed messages skip the wire and are
// delivered decoded; everything else ships the cached encoding.
func (n *TCPNode) Send(to types.NodeID, m message.Message) {
	if n.isDown() {
		return
	}
	if to == n.ID() {
		n.loopback(m)
		return
	}
	n.tr.Send(to, m.Marshal())
}

// Multicast implements Env via the engine's encode-once fan-out: the same
// encoding is enqueued to every destination's peer queue.
func (n *TCPNode) Multicast(tos []types.NodeID, m message.Message) {
	n.fanOut(tos, m, n.deliver)
}

// deliver crosses one encoding to one destination: the decoded loopback
// for self, the transport's peer queue for everyone else.
func (n *TCPNode) deliver(to types.NodeID, m message.Message, raw []byte) {
	if to == n.ID() {
		n.loopback(m)
		return
	}
	n.tr.Send(to, raw)
}

// TCPCluster runs a whole cluster as real TCP endpoints on loopback: one
// TCPNode (listener, event loop, peer senders) per process, all inside one
// OS process so the harness can drive it, but with every message crossing
// real sockets. It implements the same substrate surface as LiveCluster.
type TCPCluster struct {
	logger  *log.Logger
	opts    tcpnet.Options
	optsFor func(types.NodeID) tcpnet.Options

	mu      sync.Mutex
	nodes   map[types.NodeID]*TCPNode
	order   []types.NodeID
	killed  map[types.NodeID]string // id -> listen address, for Restart
	started bool
}

// NewTCPCluster returns an empty TCP cluster with default transport
// options.
func NewTCPCluster() *TCPCluster {
	return &TCPCluster{
		logger: log.New(io.Discard, "", 0),
		nodes:  make(map[types.NodeID]*TCPNode),
		killed: make(map[types.NodeID]string),
	}
}

// SetLogger directs process debug logs to l (default: discarded). Call
// before AddNode.
func (c *TCPCluster) SetLogger(l *log.Logger) { c.logger = l }

// SetTransportOptions overrides transport tuning (including the session
// config) for nodes added later.
func (c *TCPCluster) SetTransportOptions(opts tcpnet.Options) { c.opts = opts }

// SetNodeOptions installs a per-node transport-options factory, taking
// precedence over SetTransportOptions. Durable deployments need it: each
// node owns its own session journal (one directory per process), and
// shaped deployments derive each node's Shape hook from its own identity.
// Call before AddNode.
func (c *TCPCluster) SetNodeOptions(fn func(types.NodeID) tcpnet.Options) { c.optsFor = fn }

func (c *TCPCluster) nodeOpts(id types.NodeID) tcpnet.Options {
	if c.optsFor != nil {
		return c.optsFor(id)
	}
	return c.opts
}

// AddNode registers a process before Start: it binds a loopback listener
// immediately (so Start can distribute the full address map) but serves
// nothing until Start.
func (c *TCPCluster) AddNode(id types.NodeID, ident *crypto.Identity, proc Process) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("runtime: AddNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n, err := NewTCPNode(id, "127.0.0.1:0", ident, proc, nil, c.logger, c.nodeOpts(id))
	if err != nil {
		return err
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// Kill hard-stops one node, as a process crash would: its listener and
// connections close and its event loop stops processing, but nothing is
// flushed or handed over — peers see the connections die and keep
// redialling the (now dead) address. The address is remembered so Restart
// can bind the successor incarnation in its place. Callers owning durable
// state for the node (session journals) crash it separately; the transport
// never flushes it.
func (c *TCPCluster) Kill(id types.NodeID) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("runtime: no node %v to kill", id)
	}
	delete(c.nodes, id)
	c.killed[id] = n.Addr()
	c.mu.Unlock()
	n.Stop()
	return nil
}

// WasKilled reports whether id was stopped by Kill and awaits Restart.
func (c *TCPCluster) WasKilled(id types.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.killed[id]
	return ok
}

// Restart brings a killed node back as a new incarnation: a fresh TCPNode
// for the same ID on the same address (so peers' redial loops find it),
// running proc. With a durable session journal in the node's transport
// options, the new incarnation recovers its predecessor's session state
// and replays the unacknowledged window; protocol state is whatever proc
// carries — an order process built from a restored protocol checkpoint
// rejoins at its committed watermark and triggers its catch-up round from
// Init, which Start guarantees runs before any inbound frame (see
// engine.startLoop), so the rebind itself is what kicks off catch-up
// before ordering resumes. Client processes are typically reused across
// the restart.
func (c *TCPCluster) Restart(id types.NodeID, ident *crypto.Identity, proc Process) error {
	c.mu.Lock()
	addr, ok := c.killed[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("runtime: node %v was not killed", id)
	}
	opts := c.nodeOpts(id)
	logger := c.logger
	addrs := make(map[types.NodeID]string, len(c.nodes)+1)
	for nid, n := range c.nodes {
		addrs[nid] = n.Addr()
	}
	addrs[id] = addr
	c.mu.Unlock()

	n, err := NewTCPNode(id, addr, ident, proc, addrs, logger, opts)
	if err != nil {
		return fmt.Errorf("runtime: restarting %v: %w", id, err)
	}
	c.mu.Lock()
	if _, dup := c.nodes[id]; dup {
		c.mu.Unlock()
		n.tr.Close()
		return fmt.Errorf("runtime: node %v already restarted", id)
	}
	delete(c.killed, id)
	c.nodes[id] = n
	c.mu.Unlock()
	n.Start()
	return nil
}

// Start distributes the complete address map to every node, then launches
// their event loops and runs Init.
func (c *TCPCluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	addrs := make(map[types.NodeID]string, len(c.nodes))
	for id, n := range c.nodes {
		addrs[id] = n.Addr()
	}
	for _, id := range c.order {
		c.nodes[id].Transport().SetPeers(addrs)
	}
	for _, id := range c.order {
		c.nodes[id].Start()
	}
}

// Stop shuts down every node and waits for their loops to exit.
func (c *TCPCluster) Stop() {
	c.mu.Lock()
	nodes := make([]*TCPNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
}

// Crash makes a node stop processing and emitting (its sockets stay open;
// the process is silent, as in the live cluster).
func (c *TCPCluster) Crash(id types.NodeID) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if ok {
		n.setDown()
	}
}

// Inject runs fn inside id's event loop.
func (c *TCPCluster) Inject(id types.NodeID, fn func(env Env)) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("runtime: no node %v", id)
	}
	n.enqueue(liveEvent{fn: func() { fn(n) }})
	return nil
}

// Node returns the TCPNode for id (tests and stats inspection).
func (c *TCPCluster) Node(id types.NodeID) (*TCPNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// BounceConns forcibly closes every live connection of every node's
// transport, as a cluster-wide network fault would; senders redial and,
// with sessions, resume. Fault-injection hook for resume tests.
func (c *TCPCluster) BounceConns() {
	c.mu.Lock()
	nodes := make([]*TCPNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Transport().BounceConns()
	}
}
