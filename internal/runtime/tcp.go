package runtime

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/tcpnet"
	"github.com/sof-repro/sof/internal/types"
)

// TCPNode runs one protocol process as a real TCP endpoint: inbound frames
// from a tcpnet.Transport feed the node's event loop, and outbound sends
// go through the transport's per-peer queues. It is the third substrate —
// the same reactor code that runs on the simulator and the in-process live
// runtime runs here over real sockets.
//
// The outbound path is encode-once: Send and Multicast hand the
// transport the message's cached wire encoding (message.Message.Marshal
// memoizes it), so an n-way fan-out costs one Marshal and zero copies,
// exactly like the in-process runtimes. Self-addressed messages skip the
// wire and are delivered decoded.
type TCPNode struct {
	id    types.NodeID
	ident *crypto.Identity
	proc  Process
	tr    *tcpnet.Transport
	log   *log.Logger

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []liveEvent
	closed bool
	down   bool
	wg     sync.WaitGroup
}

var _ Env = (*TCPNode)(nil)

// NewTCPNode binds a TCP endpoint for proc on addr. peers maps every other
// process (and known client) ID to its address; it may be nil if supplied
// later via Transport().SetPeers before the node starts sending. Call
// Start to begin serving and Stop to shut down.
func NewTCPNode(id types.NodeID, addr string, ident *crypto.Identity, proc Process,
	peers map[types.NodeID]string, logger *log.Logger, opts tcpnet.Options) (*TCPNode, error) {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	tr, err := tcpnet.Listen(id, addr, peers, logger, opts)
	if err != nil {
		return nil, err
	}
	n := &TCPNode{id: id, ident: ident, proc: proc, tr: tr, log: logger}
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.tr.Addr() }

// Transport exposes the underlying transport (peer wiring, stats).
func (n *TCPNode) Transport() *tcpnet.Transport { return n.tr }

// Fatal reports an unrecoverable transport failure; callers that own the
// OS process (cmd/sofnode) should treat it as reason to exit non-zero.
func (n *TCPNode) Fatal() <-chan error { return n.tr.Fatal() }

// Start launches the event loop, begins accepting connections, and runs
// the process's Init inside the loop.
func (n *TCPNode) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.loop()
	}()
	n.tr.Start(func(from types.NodeID, frame []byte) {
		n.enqueue(liveEvent{from: from, raw: frame})
	})
	n.enqueue(liveEvent{fn: func() { n.proc.Init(n) }})
}

// Stop closes the transport and the event loop and waits for both.
func (n *TCPNode) Stop() {
	n.tr.Close()
	n.mu.Lock()
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
}

func (n *TCPNode) enqueue(e liveEvent) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.queue = append(n.queue, e)
	n.cond.Signal()
}

func (n *TCPNode) setDown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
}

func (n *TCPNode) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// loop serialises Init, Receive and timer callbacks, mirroring liveNode.
func (n *TCPNode) loop() {
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		e := n.queue[0]
		n.queue = n.queue[1:]
		down := n.down
		n.mu.Unlock()

		if down {
			continue
		}
		if e.fn != nil {
			e.fn()
			continue
		}
		if e.msg != nil {
			n.proc.Receive(n, e.from, e.msg)
			continue
		}
		m, err := message.Decode(e.raw)
		if err != nil {
			n.Logf("dropping undecodable message from %v: %v", e.from, err)
			continue
		}
		n.proc.Receive(n, e.from, m)
	}
}

// ID implements Env.
func (n *TCPNode) ID() types.NodeID { return n.id }

// Now implements Env.
func (n *TCPNode) Now() time.Time { return time.Now() }

// Charge implements Env (no-op: real CPU time is real).
func (n *TCPNode) Charge(time.Duration) {}

// Send implements Env. Self-addressed messages skip the wire and are
// delivered decoded; everything else ships the cached encoding.
func (n *TCPNode) Send(to types.NodeID, m message.Message) {
	if n.isDown() {
		return
	}
	if to == n.id {
		n.enqueue(liveEvent{from: n.id, msg: m})
		return
	}
	n.tr.Send(to, m.Marshal())
}

// Multicast implements Env: the message is marshalled exactly once and the
// same encoding is enqueued to every destination's peer queue.
func (n *TCPNode) Multicast(tos []types.NodeID, m message.Message) {
	if n.isDown() {
		return
	}
	raw := m.Marshal()
	for _, to := range tos {
		if to == n.id {
			n.enqueue(liveEvent{from: n.id, msg: m})
			continue
		}
		n.tr.Send(to, raw)
	}
}

// SetTimer implements Env.
func (n *TCPNode) SetTimer(d time.Duration, fn func()) Timer {
	lt := &liveTimer{}
	lt.timer = time.AfterFunc(d, func() {
		n.enqueue(liveEvent{fn: func() {
			if lt.expired() {
				return
			}
			fn()
		}})
	})
	return lt
}

// Digest implements Env.
func (n *TCPNode) Digest(data []byte) []byte { return n.ident.Digest(data) }

// Sign implements Env.
func (n *TCPNode) Sign(digest []byte) (crypto.Signature, error) { return n.ident.Sign(digest) }

// Verify implements Env.
func (n *TCPNode) Verify(signer types.NodeID, digest []byte, sig crypto.Signature) error {
	return n.ident.Verify(signer, digest, sig)
}

// Logf implements Env.
func (n *TCPNode) Logf(format string, args ...any) {
	n.log.Printf("[%v] %s", n.id, fmt.Sprintf(format, args...))
}

// TCPCluster runs a whole cluster as real TCP endpoints on loopback: one
// TCPNode (listener, event loop, peer senders) per process, all inside one
// OS process so the harness can drive it, but with every message crossing
// real sockets. It implements the same substrate surface as LiveCluster.
type TCPCluster struct {
	logger *log.Logger
	opts   tcpnet.Options

	mu      sync.Mutex
	nodes   map[types.NodeID]*TCPNode
	order   []types.NodeID
	started bool
}

// NewTCPCluster returns an empty TCP cluster with default transport
// options.
func NewTCPCluster() *TCPCluster {
	return &TCPCluster{
		logger: log.New(io.Discard, "", 0),
		nodes:  make(map[types.NodeID]*TCPNode),
	}
}

// SetLogger directs process debug logs to l (default: discarded). Call
// before AddNode.
func (c *TCPCluster) SetLogger(l *log.Logger) { c.logger = l }

// SetTransportOptions overrides transport tuning for nodes added later.
func (c *TCPCluster) SetTransportOptions(opts tcpnet.Options) { c.opts = opts }

// AddNode registers a process before Start: it binds a loopback listener
// immediately (so Start can distribute the full address map) but serves
// nothing until Start.
func (c *TCPCluster) AddNode(id types.NodeID, ident *crypto.Identity, proc Process) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("runtime: AddNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n, err := NewTCPNode(id, "127.0.0.1:0", ident, proc, nil, c.logger, c.opts)
	if err != nil {
		return err
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// Start distributes the complete address map to every node, then launches
// their event loops and runs Init.
func (c *TCPCluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	addrs := make(map[types.NodeID]string, len(c.nodes))
	for id, n := range c.nodes {
		addrs[id] = n.Addr()
	}
	for _, id := range c.order {
		c.nodes[id].Transport().SetPeers(addrs)
	}
	for _, id := range c.order {
		c.nodes[id].Start()
	}
}

// Stop shuts down every node and waits for their loops to exit.
func (c *TCPCluster) Stop() {
	c.mu.Lock()
	nodes := make([]*TCPNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
}

// Crash makes a node stop processing and emitting (its sockets stay open;
// the process is silent, as in the live cluster).
func (c *TCPCluster) Crash(id types.NodeID) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if ok {
		n.setDown()
	}
}

// Inject runs fn inside id's event loop.
func (c *TCPCluster) Inject(id types.NodeID, fn func(env Env)) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("runtime: no node %v", id)
	}
	n.enqueue(liveEvent{fn: func() { fn(n) }})
	return nil
}

// Node returns the TCPNode for id (tests and stats inspection).
func (c *TCPCluster) Node(id types.NodeID) (*TCPNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}
