package runtime

import (
	"fmt"
	"io"
	"log"
	"strconv"
	"sync"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/obs"
	"github.com/sof-repro/sof/internal/shard"
	"github.com/sof-repro/sof/internal/tcpnet"
	"github.com/sof-repro/sof/internal/types"
)

// TCPNode runs one physical TCP endpoint hosting one or more protocol
// processes: inbound frames from a tcpnet.Transport feed the shared
// delivery engine's event loops, and outbound sends go through the
// transport's per-peer queues. It is the third substrate — the same
// reactor code that runs on the simulator and the in-process live
// runtime runs here over real sockets.
//
// A plain node (NewTCPNode) hosts exactly one process and its wire
// format is a raw message encoding per frame. A sharded node
// (NewShardedTCPNode) hosts one process per ordering group over the
// SAME transport and sessions — N groups cost one listener, one set of
// peer connections and one session journal per physical node, not N× —
// and every frame carries a one-byte group address ahead of the message
// encoding, demultiplexed to the group's own event loop on receipt.
// Group cores never share protocol state; the transport beneath them is
// the only shared layer.
//
// The outbound path is encode-once: Send and Multicast hand the
// transport the message's cached wire encoding (message.Message.Marshal
// memoizes it), so an n-way fan-out costs one Marshal and zero copies,
// exactly like the in-process runtimes (sharded nodes add one prefix
// copy per fan-out, not per destination). Self-addressed messages skip
// the wire and are delivered decoded. With tcpnet.Options.Session the
// frames beneath this node are sequenced, HMAC-authenticated and
// resumable; the cores above are oblivious.
type TCPNode struct {
	tr      *tcpnet.Transport
	wg      sync.WaitGroup
	sharded bool       // frames carry the one-byte group prefix
	cores   []*tcpCore // index = group; nil entries host no process

	// Routing instruments, pre-registered per hosted group and indexed by
	// the same slice position as cores — the dispatch hot path does one
	// slice load and one atomic add, no map lookup. All nil (and no-op)
	// when the transport options carried no registry.
	routed     []*obs.Counter // frames routed to each group's event loop
	unroutable *obs.Counter   // frames with no hosting group (or no prefix)
}

// tcpCore is one group's delivery engine on a (possibly shared) TCP
// endpoint: its own serialised event loop and Env, sending through the
// owner's transport.
type tcpCore struct {
	engine
	n     *TCPNode
	group int
}

var _ Env = (*tcpCore)(nil)

// groupPrefix wraps raw in the sharded wire format (see
// shard.PrefixGroup — the format is shared with client submissions and
// commit replies).
func groupPrefix(group int, raw []byte) []byte {
	return shard.PrefixGroup(group, raw)
}

// Send implements Env. Self-addressed messages skip the wire and are
// delivered decoded; everything else ships the cached encoding, group-
// prefixed on sharded nodes.
func (c *tcpCore) Send(to types.NodeID, m message.Message) {
	if c.isDown() {
		return
	}
	if to == c.ID() {
		c.loopback(m)
		return
	}
	raw := m.Marshal()
	if c.n.sharded {
		raw = groupPrefix(c.group, raw)
	}
	c.n.tr.Send(to, raw)
}

// Multicast implements Env via the engine's encode-once fan-out: the
// same encoding (wrapped at most once) is enqueued to every
// destination's peer queue.
func (c *tcpCore) Multicast(tos []types.NodeID, m message.Message) {
	var wrapped []byte
	c.fanOut(tos, m, func(to types.NodeID, m message.Message, raw []byte) {
		if to == c.ID() {
			c.loopback(m)
			return
		}
		if c.n.sharded {
			if wrapped == nil {
				wrapped = groupPrefix(c.group, raw)
			}
			raw = wrapped
		}
		c.n.tr.Send(to, raw)
	})
}

// NewTCPNode binds a TCP endpoint for proc on addr. peers maps every other
// process (and known client) ID to its address; it may be nil if supplied
// later via Transport().SetPeers before the node starts sending. Call
// Start to begin serving and Stop to shut down.
func NewTCPNode(id types.NodeID, addr string, ident *crypto.Identity, proc Process,
	peers map[types.NodeID]string, logger *log.Logger, opts tcpnet.Options) (*TCPNode, error) {
	return newTCPEndpoint(id, addr, ident, []Process{proc}, false, peers, logger, opts)
}

// NewShardedTCPNode binds one TCP endpoint hosting procs[g] for every
// group g (nil entries host nothing and drop that group's inbound
// frames). All nodes and clients of a sharded deployment must be built
// sharded: the group-prefix wire format is cluster-wide.
func NewShardedTCPNode(id types.NodeID, addr string, ident *crypto.Identity, procs []Process,
	peers map[types.NodeID]string, logger *log.Logger, opts tcpnet.Options) (*TCPNode, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("runtime: sharded node %v needs at least one group process", id)
	}
	return newTCPEndpoint(id, addr, ident, procs, true, peers, logger, opts)
}

func newTCPEndpoint(id types.NodeID, addr string, ident *crypto.Identity, procs []Process,
	sharded bool, peers map[types.NodeID]string, logger *log.Logger, opts tcpnet.Options) (*TCPNode, error) {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	tr, err := tcpnet.Listen(id, addr, peers, logger, opts)
	if err != nil {
		return nil, err
	}
	n := &TCPNode{tr: tr, sharded: sharded, cores: make([]*tcpCore, len(procs)),
		routed: make([]*obs.Counter, len(procs))}
	if m := opts.Metrics; m != nil {
		n.unroutable = m.Counter("sof_frames_unroutable_total",
			"Inbound frames dropped for lacking a hosted group (or a group prefix).",
			obs.L("node", fmt.Sprint(id)))
	}
	for g, proc := range procs {
		if proc == nil {
			continue
		}
		if m := opts.Metrics; m != nil {
			n.routed[g] = m.Counter("sof_group_frames_routed_total",
				"Inbound frames routed to this group's event loop.",
				obs.L("node", fmt.Sprint(id)), obs.L("group", strconv.Itoa(g)))
		}
		core := &tcpCore{n: n, group: g}
		logf := func(format string, args ...any) {
			logger.Printf("[%v] %s", id, fmt.Sprintf(format, args...))
		}
		if sharded {
			group := g
			logf = func(format string, args ...any) {
				logger.Printf("[%v/g%d] %s", id, group, fmt.Sprintf(format, args...))
			}
		}
		core.attach(id, ident, proc, core, logf)
		n.cores[g] = core
	}
	return n, nil
}

// core returns the group's delivery core, or nil.
func (n *TCPNode) core(group int) *tcpCore {
	if group < 0 || group >= len(n.cores) {
		return nil
	}
	return n.cores[group]
}

// Addr returns the node's bound listen address.
func (n *TCPNode) Addr() string { return n.tr.Addr() }

// Transport exposes the underlying transport (peer wiring, stats,
// connection fault injection).
func (n *TCPNode) Transport() *tcpnet.Transport { return n.tr }

// Fatal reports an unrecoverable transport failure; callers that own the
// OS process (cmd/sofnode) should treat it as reason to exit non-zero.
func (n *TCPNode) Fatal() <-chan error { return n.tr.Fatal() }

// Start launches every group's event loop with its process's Init as the
// first event, then begins accepting connections — in that order, so
// inbound frames (and a recovered session's replay, which can arrive the
// moment the transport is up) are never processed ahead of Init.
func (n *TCPNode) Start() {
	for _, c := range n.cores {
		if c != nil {
			c.startLoop(&n.wg)
		}
	}
	n.tr.Start(n.dispatch)
}

// dispatch routes one inbound frame to its group's event loop. Plain
// nodes have exactly one core and no prefix; sharded nodes strip the
// group byte and drop frames addressed to groups they do not host.
func (n *TCPNode) dispatch(from types.NodeID, frame []byte) {
	if !n.sharded {
		if c := n.cores[0]; c != nil {
			n.routed[0].Inc()
			c.enqueue(liveEvent{from: from, raw: frame})
		}
		return
	}
	if len(frame) < 1 {
		n.unroutable.Inc()
		return
	}
	g := int(frame[0])
	c := n.core(g)
	if c == nil {
		n.unroutable.Inc()
		return
	}
	n.routed[g].Inc()
	c.enqueue(liveEvent{from: from, raw: frame[1:]})
}

// Stop closes the transport and every event loop and waits for all.
func (n *TCPNode) Stop() {
	n.tr.Close()
	for _, c := range n.cores {
		if c != nil {
			c.closeLoop()
		}
	}
	n.wg.Wait()
}

// setDown silences every hosted process (Crash semantics).
func (n *TCPNode) setDown() {
	for _, c := range n.cores {
		if c != nil {
			c.setDown()
		}
	}
}

// TCPCluster runs a whole cluster as real TCP endpoints on loopback: one
// TCPNode (listener, event loop, peer senders) per process, all inside one
// OS process so the harness can drive it, but with every message crossing
// real sockets. It implements the same substrate surface as LiveCluster.
type TCPCluster struct {
	logger  *log.Logger
	opts    tcpnet.Options
	optsFor func(types.NodeID) tcpnet.Options

	mu      sync.Mutex
	nodes   map[types.NodeID]*TCPNode
	order   []types.NodeID
	killed  map[types.NodeID]string // id -> listen address, for Restart
	started bool
}

// NewTCPCluster returns an empty TCP cluster with default transport
// options.
func NewTCPCluster() *TCPCluster {
	return &TCPCluster{
		logger: log.New(io.Discard, "", 0),
		nodes:  make(map[types.NodeID]*TCPNode),
		killed: make(map[types.NodeID]string),
	}
}

// SetLogger directs process debug logs to l (default: discarded). Call
// before AddNode.
func (c *TCPCluster) SetLogger(l *log.Logger) { c.logger = l }

// SetTransportOptions overrides transport tuning (including the session
// config) for nodes added later.
func (c *TCPCluster) SetTransportOptions(opts tcpnet.Options) { c.opts = opts }

// SetNodeOptions installs a per-node transport-options factory, taking
// precedence over SetTransportOptions. Durable deployments need it: each
// node owns its own session journal (one directory per process), and
// shaped deployments derive each node's Shape hook from its own identity.
// Call before AddNode.
func (c *TCPCluster) SetNodeOptions(fn func(types.NodeID) tcpnet.Options) { c.optsFor = fn }

func (c *TCPCluster) nodeOpts(id types.NodeID) tcpnet.Options {
	if c.optsFor != nil {
		return c.optsFor(id)
	}
	return c.opts
}

// AddNode registers a process before Start: it binds a loopback listener
// immediately (so Start can distribute the full address map) but serves
// nothing until Start.
func (c *TCPCluster) AddNode(id types.NodeID, ident *crypto.Identity, proc Process) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("runtime: AddNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n, err := NewTCPNode(id, "127.0.0.1:0", ident, proc, nil, c.logger, c.nodeOpts(id))
	if err != nil {
		return err
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// AddShardedNode registers a physical node hosting one process per
// ordering group, all multiplexed over one listener and one session
// config (see NewShardedTCPNode). A cluster must be uniformly sharded or
// uniformly plain — the wire formats differ.
func (c *TCPCluster) AddShardedNode(id types.NodeID, ident *crypto.Identity, procs []Process) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("runtime: AddShardedNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n, err := NewShardedTCPNode(id, "127.0.0.1:0", ident, procs, nil, c.logger, c.nodeOpts(id))
	if err != nil {
		return err
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// Kill hard-stops one node, as a process crash would: its listener and
// connections close and its event loop stops processing, but nothing is
// flushed or handed over — peers see the connections die and keep
// redialling the (now dead) address. The address is remembered so Restart
// can bind the successor incarnation in its place. Callers owning durable
// state for the node (session journals) crash it separately; the transport
// never flushes it.
func (c *TCPCluster) Kill(id types.NodeID) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("runtime: no node %v to kill", id)
	}
	delete(c.nodes, id)
	c.killed[id] = n.Addr()
	c.mu.Unlock()
	n.Stop()
	return nil
}

// WasKilled reports whether id was stopped by Kill and awaits Restart.
func (c *TCPCluster) WasKilled(id types.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.killed[id]
	return ok
}

// Restart brings a killed node back as a new incarnation: a fresh TCPNode
// for the same ID on the same address (so peers' redial loops find it),
// running proc. With a durable session journal in the node's transport
// options, the new incarnation recovers its predecessor's session state
// and replays the unacknowledged window; protocol state is whatever proc
// carries — an order process built from a restored protocol checkpoint
// rejoins at its committed watermark and triggers its catch-up round from
// Init, which Start guarantees runs before any inbound frame (see
// engine.startLoop), so the rebind itself is what kicks off catch-up
// before ordering resumes. Client processes are typically reused across
// the restart.
func (c *TCPCluster) Restart(id types.NodeID, ident *crypto.Identity, proc Process) error {
	return c.restart(id, ident, []Process{proc}, false)
}

// RestartSharded is Restart for sharded nodes: the new incarnation hosts
// procs[g] per group over the reclaimed address.
func (c *TCPCluster) RestartSharded(id types.NodeID, ident *crypto.Identity, procs []Process) error {
	return c.restart(id, ident, procs, true)
}

func (c *TCPCluster) restart(id types.NodeID, ident *crypto.Identity, procs []Process, sharded bool) error {
	c.mu.Lock()
	addr, ok := c.killed[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("runtime: node %v was not killed", id)
	}
	opts := c.nodeOpts(id)
	logger := c.logger
	addrs := make(map[types.NodeID]string, len(c.nodes)+1)
	for nid, n := range c.nodes {
		addrs[nid] = n.Addr()
	}
	addrs[id] = addr
	c.mu.Unlock()

	n, err := newTCPEndpoint(id, addr, ident, procs, sharded, addrs, logger, opts)
	if err != nil {
		return fmt.Errorf("runtime: restarting %v: %w", id, err)
	}
	c.mu.Lock()
	if _, dup := c.nodes[id]; dup {
		c.mu.Unlock()
		n.tr.Close()
		return fmt.Errorf("runtime: node %v already restarted", id)
	}
	delete(c.killed, id)
	c.nodes[id] = n
	c.mu.Unlock()
	n.Start()
	return nil
}

// Start distributes the complete address map to every node, then launches
// their event loops and runs Init.
func (c *TCPCluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	addrs := make(map[types.NodeID]string, len(c.nodes))
	for id, n := range c.nodes {
		addrs[id] = n.Addr()
	}
	for _, id := range c.order {
		c.nodes[id].Transport().SetPeers(addrs)
	}
	for _, id := range c.order {
		c.nodes[id].Start()
	}
}

// Stop shuts down every node and waits for their loops to exit.
func (c *TCPCluster) Stop() {
	c.mu.Lock()
	nodes := make([]*TCPNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
}

// Crash makes a node stop processing and emitting (its sockets stay open;
// the process is silent, as in the live cluster).
func (c *TCPCluster) Crash(id types.NodeID) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if ok {
		n.setDown()
	}
}

// Inject runs fn inside id's event loop (group 0 on sharded nodes).
func (c *TCPCluster) Inject(id types.NodeID, fn func(env Env)) error {
	return c.InjectGroup(id, 0, fn)
}

// InjectGroup runs fn inside one group's event loop on node id.
func (c *TCPCluster) InjectGroup(id types.NodeID, group int, fn func(env Env)) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("runtime: no node %v", id)
	}
	core := n.core(group)
	if core == nil {
		return fmt.Errorf("runtime: node %v hosts no group %d", id, group)
	}
	core.enqueue(liveEvent{fn: func() { fn(core) }})
	return nil
}

// Node returns the TCPNode for id (tests and stats inspection).
func (c *TCPCluster) Node(id types.NodeID) (*TCPNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// BounceConns forcibly closes every live connection of every node's
// transport, as a cluster-wide network fault would; senders redial and,
// with sessions, resume. Fault-injection hook for resume tests.
func (c *TCPCluster) BounceConns() {
	c.mu.Lock()
	nodes := make([]*TCPNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Transport().BounceConns()
	}
}
