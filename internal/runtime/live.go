package runtime

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/netsim"
	"github.com/sof-repro/sof/internal/types"
)

// LiveCluster runs the same protocol processes in real time: one event-loop
// goroutine per process, real cryptography, and (optionally) artificial
// network delays from a netsim.Fabric. Message payloads cross node
// boundaries in marshalled form and are re-decoded by the receiver, so the
// full wire codec is exercised.
type LiveCluster struct {
	fabric *netsim.Fabric // nil means deliver immediately
	logger *log.Logger

	mu      sync.Mutex
	nodes   map[types.NodeID]*liveNode
	order   []types.NodeID
	started bool
	wg      sync.WaitGroup
}

// NewLiveCluster returns an empty real-time cluster. fabric may be nil for
// zero-delay loopback delivery.
func NewLiveCluster(fabric *netsim.Fabric) *LiveCluster {
	return &LiveCluster{
		fabric: fabric,
		nodes:  make(map[types.NodeID]*liveNode),
		logger: log.New(io.Discard, "", 0),
	}
}

// SetLogger directs process debug logs to l (default: discarded).
func (c *LiveCluster) SetLogger(l *log.Logger) { c.logger = l }

// Fabric returns the network fabric (may be nil).
func (c *LiveCluster) Fabric() *netsim.Fabric { return c.fabric }

// AddNode registers a process before Start.
func (c *LiveCluster) AddNode(id types.NodeID, ident *crypto.Identity, proc Process) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("runtime: AddNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n := newLiveNode(c, id, ident, proc)
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// Start launches every node's event loop and runs Init inside it.
func (c *LiveCluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	for _, id := range c.order {
		c.nodes[id].startLoop(&c.wg)
	}
}

// Stop shuts down all event loops and waits for them to exit. Messages
// still in flight are dropped.
func (c *LiveCluster) Stop() {
	c.mu.Lock()
	nodes := make([]*liveNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.closeLoop()
	}
	c.wg.Wait()
}

// Crash makes a node stop processing and emitting.
func (c *LiveCluster) Crash(id types.NodeID) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if ok {
		n.setDown()
	}
}

// Inject runs fn inside id's event loop (fault injectors use this to act
// "as" the node).
func (c *LiveCluster) Inject(id types.NodeID, fn func(env Env)) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("runtime: no node %v", id)
	}
	n.enqueue(liveEvent{fn: func() { fn(n) }})
	return nil
}

func (c *LiveCluster) node(id types.NodeID) (*liveNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// liveNode runs one process over the shared delivery engine; all that is
// substrate-specific here is how encodings cross node boundaries — via
// the cluster's node map, optionally shaped by fabric delays.
type liveNode struct {
	engine
	c *LiveCluster
}

var _ Env = (*liveNode)(nil)

func newLiveNode(c *LiveCluster, id types.NodeID, ident *crypto.Identity, proc Process) *liveNode {
	n := &liveNode{c: c}
	n.attach(id, ident, proc, n, func(format string, args ...any) {
		c.logger.Printf("[%s %v] %s",
			time.Now().Format("15:04:05.000000"), id, fmt.Sprintf(format, args...))
	})
	return n
}

// Send implements Env.
func (n *liveNode) Send(to types.NodeID, m message.Message) {
	if n.isDown() {
		return
	}
	n.deliver(to, m, m.Marshal())
}

// Multicast implements Env via the engine's encode-once fan-out.
func (n *liveNode) Multicast(tos []types.NodeID, m message.Message) {
	n.fanOut(tos, m, n.deliver)
}

// deliver crosses one encoding to one destination: fabric delay and drop
// modelling, wire accounting, and the decoded self-loopback (which is
// still subject to the modelled delay — local delivery takes fabric time
// in the in-process substrate).
func (n *liveNode) deliver(to types.NodeID, m message.Message, raw []byte) {
	target, ok := n.c.node(to)
	if !ok {
		return
	}
	var delay time.Duration
	if n.c.fabric != nil {
		d, deliverable := n.c.fabric.Delay(n.ID(), to, len(raw))
		if !deliverable {
			return
		}
		delay = d
		if to != n.ID() {
			n.c.fabric.Record(m.Type(), len(raw))
		}
	}
	ev := liveEvent{from: n.ID(), raw: raw}
	if to == n.ID() {
		// Self-loopback skips the wire: messages are immutable, the event
		// loop is this goroutine, so the decoded form is delivered as-is.
		ev = liveEvent{from: n.ID(), msg: m}
	}
	if delay <= 0 {
		target.enqueue(ev)
		return
	}
	time.AfterFunc(delay, func() { target.enqueue(ev) })
}
