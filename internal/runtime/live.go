package runtime

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/crypto"
	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/netsim"
	"github.com/sof-repro/sof/internal/types"
)

// LiveCluster runs the same protocol processes in real time: one event-loop
// goroutine per process, real cryptography, and (optionally) artificial
// network delays from a netsim.Fabric. Message payloads cross node
// boundaries in marshalled form and are re-decoded by the receiver, so the
// full wire codec is exercised.
type LiveCluster struct {
	fabric *netsim.Fabric // nil means deliver immediately
	logger *log.Logger

	mu      sync.Mutex
	nodes   map[types.NodeID]*liveNode
	order   []types.NodeID
	started bool
	wg      sync.WaitGroup
}

// NewLiveCluster returns an empty real-time cluster. fabric may be nil for
// zero-delay loopback delivery.
func NewLiveCluster(fabric *netsim.Fabric) *LiveCluster {
	return &LiveCluster{
		fabric: fabric,
		nodes:  make(map[types.NodeID]*liveNode),
		logger: log.New(io.Discard, "", 0),
	}
}

// SetLogger directs process debug logs to l (default: discarded).
func (c *LiveCluster) SetLogger(l *log.Logger) { c.logger = l }

// Fabric returns the network fabric (may be nil).
func (c *LiveCluster) Fabric() *netsim.Fabric { return c.fabric }

// AddNode registers a process before Start.
func (c *LiveCluster) AddNode(id types.NodeID, ident *crypto.Identity, proc Process) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("runtime: AddNode(%v) after Start", id)
	}
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("runtime: duplicate node %v", id)
	}
	n := newLiveNode(c, id, ident, proc)
	c.nodes[id] = n
	c.order = append(c.order, id)
	return nil
}

// Start launches every node's event loop and runs Init inside it.
func (c *LiveCluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	for _, id := range c.order {
		n := c.nodes[id]
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.loop()
		}()
		n.enqueue(liveEvent{fn: func() { n.proc.Init(n) }})
	}
}

// Stop shuts down all event loops and waits for them to exit. Messages
// still in flight are dropped.
func (c *LiveCluster) Stop() {
	c.mu.Lock()
	nodes := make([]*liveNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.close()
	}
	c.wg.Wait()
}

// Crash makes a node stop processing and emitting.
func (c *LiveCluster) Crash(id types.NodeID) {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if ok {
		n.setDown()
	}
}

// Inject runs fn inside id's event loop (fault injectors use this to act
// "as" the node).
func (c *LiveCluster) Inject(id types.NodeID, fn func(env Env)) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("runtime: no node %v", id)
	}
	n.enqueue(liveEvent{fn: func() { fn(n) }})
	return nil
}

func (c *LiveCluster) node(id types.NodeID) (*liveNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// liveEvent is one unit of work in a node's event loop: a delivered wire
// message (raw != nil), an already-decoded self-loopback message (msg !=
// nil), or a callback.
type liveEvent struct {
	from types.NodeID
	raw  []byte
	msg  message.Message
	fn   func()
}

// liveNode implements Env in real time. Its event loop serialises Init,
// Receive and timer callbacks.
type liveNode struct {
	c     *LiveCluster
	id    types.NodeID
	ident *crypto.Identity
	proc  Process

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []liveEvent
	closed bool
	down   bool
}

var _ Env = (*liveNode)(nil)

func newLiveNode(c *LiveCluster, id types.NodeID, ident *crypto.Identity, proc Process) *liveNode {
	n := &liveNode{c: c, id: id, ident: ident, proc: proc}
	n.cond = sync.NewCond(&n.mu)
	return n
}

func (n *liveNode) enqueue(e liveEvent) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.queue = append(n.queue, e)
	n.cond.Signal()
}

func (n *liveNode) close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	n.cond.Broadcast()
}

func (n *liveNode) setDown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
}

func (n *liveNode) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

func (n *liveNode) loop() {
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		e := n.queue[0]
		n.queue = n.queue[1:]
		down := n.down
		n.mu.Unlock()

		if down {
			continue
		}
		if e.fn != nil {
			e.fn()
			continue
		}
		if e.msg != nil {
			n.proc.Receive(n, e.from, e.msg)
			continue
		}
		m, err := message.Decode(e.raw)
		if err != nil {
			n.Logf("dropping undecodable message from %v: %v", e.from, err)
			continue
		}
		n.proc.Receive(n, e.from, m)
	}
}

// ID implements Env.
func (n *liveNode) ID() types.NodeID { return n.id }

// Now implements Env.
func (n *liveNode) Now() time.Time { return time.Now() }

// Charge implements Env (no-op: live operations take real time).
func (n *liveNode) Charge(time.Duration) {}

// Send implements Env.
func (n *liveNode) Send(to types.NodeID, m message.Message) {
	n.deliver(to, m, m.Marshal())
}

// Multicast implements Env. The message is marshalled exactly once for all
// destinations (and concrete message types additionally cache the encoding
// on the message itself).
func (n *liveNode) Multicast(tos []types.NodeID, m message.Message) {
	raw := m.Marshal()
	for _, to := range tos {
		n.deliver(to, m, raw)
	}
}

func (n *liveNode) deliver(to types.NodeID, m message.Message, raw []byte) {
	if n.isDown() {
		return
	}
	target, ok := n.c.node(to)
	if !ok {
		return
	}
	var delay time.Duration
	if n.c.fabric != nil {
		d, deliverable := n.c.fabric.Delay(n.id, to, len(raw))
		if !deliverable {
			return
		}
		delay = d
		if to != n.id {
			n.c.fabric.Record(m.Type(), len(raw))
		}
	}
	ev := liveEvent{from: n.id, raw: raw}
	if to == n.id {
		// Self-loopback skips the wire: messages are immutable, the event
		// loop is this goroutine, so the decoded form is delivered as-is.
		ev = liveEvent{from: n.id, msg: m}
	}
	if delay <= 0 {
		target.enqueue(ev)
		return
	}
	time.AfterFunc(delay, func() { target.enqueue(ev) })
}

// liveTimer implements Timer over time.Timer, with a stopped flag that
// also wins the race where the callback is already queued in the loop.
type liveTimer struct {
	mu      sync.Mutex
	stopped bool
	timer   *time.Timer
}

// Stop implements Timer.
func (t *liveTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	t.timer.Stop()
	return true
}

func (t *liveTimer) expired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return true
	}
	t.stopped = true
	return false
}

// SetTimer implements Env.
func (n *liveNode) SetTimer(d time.Duration, fn func()) Timer {
	lt := &liveTimer{}
	lt.timer = time.AfterFunc(d, func() {
		n.enqueue(liveEvent{fn: func() {
			if lt.expired() {
				return
			}
			fn()
		}})
	})
	return lt
}

// Digest implements Env.
func (n *liveNode) Digest(data []byte) []byte { return n.ident.Digest(data) }

// Sign implements Env.
func (n *liveNode) Sign(digest []byte) (crypto.Signature, error) { return n.ident.Sign(digest) }

// Verify implements Env.
func (n *liveNode) Verify(signer types.NodeID, digest []byte, sig crypto.Signature) error {
	return n.ident.Verify(signer, digest, sig)
}

// Logf implements Env.
func (n *liveNode) Logf(format string, args ...any) {
	n.c.logger.Printf("[%s %v] %s",
		time.Now().Format("15:04:05.000000"), n.id, fmt.Sprintf(format, args...))
}
