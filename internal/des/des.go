package des

import (
	"container/heap"
	"sync"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	at       time.Time
	seq      uint64 // tie-break: FIFO among equal timestamps
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
	pooled   bool // recycled after it runs; never handed to callers
}

// eventPool recycles Events scheduled through Post. A simulation run
// schedules one event per message delivery; recycling them keeps the
// steady-state hot path allocation-free. Only Post events are pooled: an
// Event returned by At/After may be retained by the caller (for Cancel)
// arbitrarily long after it runs.
var eventPool = sync.Pool{New: func() any { return new(Event) }}

// At returns the event's scheduled time.
func (e *Event) At() time.Time { return e.at }

// Cancel prevents the event from running. It reports whether the event had
// not yet run (and was therefore actually canceled).
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.index == -2 {
		return false
	}
	e.canceled = true
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -2 // popped
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulation harness drives it from one goroutine.
type Scheduler struct {
	now    time.Time
	queue  eventHeap
	seq    uint64
	nSteps uint64
}

// Epoch is the conventional virtual start time of simulations.
var Epoch = time.Date(2006, time.June, 1, 0, 0, 0, 0, time.UTC)

// New returns a scheduler whose clock starts at start (use Epoch for the
// conventional origin).
func New(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Len returns the number of queued events (including canceled ones not yet
// discarded).
func (s *Scheduler) Len() int { return len(s.queue) }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.nSteps }

// At schedules fn at time t. Times in the past run "now" (the scheduler
// clock never moves backwards).
func (s *Scheduler) At(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn after a virtual delay d.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Post schedules fn at time t like At, but the event is pooled and recycled
// after it runs. Use it for fire-and-forget scheduling (message deliveries);
// callers that may need Cancel must use At, which hands out the Event.
func (s *Scheduler) Post(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	e := eventPool.Get().(*Event)
	*e = Event{at: t, seq: s.seq, fn: fn, index: -1, pooled: true}
	heap.Push(&s.queue, e)
}

// recycle returns a pooled popped event to the pool.
func recycle(e *Event) {
	if e.pooled {
		*e = Event{}
		eventPool.Put(e)
	}
}

// Step runs the next event, advancing the clock to its timestamp. It
// reports whether an event ran (false means the queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			recycle(e)
			continue
		}
		s.now = e.at
		s.nSteps++
		fn := e.fn
		recycle(e) // before fn: reentrant scheduling during fn can reuse it
		fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is exhausted or the next event
// is after t; the clock finishes at exactly t (or later if an event at t
// scheduled nothing further). It returns the number of events executed.
func (s *Scheduler) RunUntil(t time.Time) int {
	ran := 0
	for {
		e := s.peek()
		if e == nil || e.at.After(t) {
			break
		}
		s.Step()
		ran++
	}
	if s.now.Before(t) {
		s.now = t
	}
	return ran
}

// RunFor executes events for a virtual duration d from the current time.
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// Drain runs events until the queue empties or limit events have run
// (limit <= 0 means no limit). It returns the number executed. Protocols
// with periodic timers never drain; use RunUntil for those.
func (s *Scheduler) Drain(limit int) int {
	ran := 0
	for limit <= 0 || ran < limit {
		if !s.Step() {
			break
		}
		ran++
	}
	return ran
}

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.queue)
		recycle(e)
	}
	return nil
}
