package des

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(Epoch)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if n := s.Drain(0); n != 3 {
		t.Fatalf("Drain ran %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
	if want := Epoch.Add(30 * time.Millisecond); !s.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New(Epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Drain(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(Epoch)
	ran := false
	e := s.After(time.Millisecond, func() { ran = true })
	if !e.Cancel() {
		t.Error("Cancel() = false for pending event")
	}
	if e.Cancel() {
		t.Error("second Cancel() = true")
	}
	s.Drain(0)
	if ran {
		t.Error("canceled event ran")
	}

	// Cancel after the event has run reports false.
	var e2 *Event
	e2 = s.After(time.Millisecond, func() {})
	s.Drain(0)
	if e2.Cancel() {
		t.Error("Cancel() after run = true")
	}
	if (*Event)(nil).Cancel() {
		t.Error("nil Cancel() = true")
	}
}

func TestEventsScheduledDuringEvents(t *testing.T) {
	s := New(Epoch)
	var got []string
	s.After(10*time.Millisecond, func() {
		got = append(got, "a")
		s.After(5*time.Millisecond, func() { got = append(got, "c") })
		s.After(0, func() { got = append(got, "b") })
	})
	s.Drain(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	s := New(Epoch)
	s.RunUntil(Epoch.Add(time.Second))
	ran := false
	s.At(Epoch, func() { ran = true }) // in the past
	s.Step()
	if !ran {
		t.Fatal("past event did not run")
	}
	if s.Now().Before(Epoch.Add(time.Second)) {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(Epoch)
	var got []int
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(30*time.Millisecond, func() { got = append(got, 2) })
	n := s.RunUntil(Epoch.Add(20 * time.Millisecond))
	if n != 1 || len(got) != 1 {
		t.Fatalf("RunUntil ran %d events (%v), want 1", n, got)
	}
	if want := Epoch.Add(20 * time.Millisecond); !s.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", s.Now(), want)
	}
	// An event exactly at the boundary runs.
	s.At(Epoch.Add(25*time.Millisecond), func() { got = append(got, 3) })
	s.RunUntil(Epoch.Add(25 * time.Millisecond))
	if len(got) != 2 || got[1] != 3 {
		t.Errorf("boundary event did not run: %v", got)
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	s := New(Epoch)
	s.RunFor(42 * time.Millisecond)
	if want := Epoch.Add(42 * time.Millisecond); !s.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestDrainLimit(t *testing.T) {
	s := New(Epoch)
	count := 0
	// A self-perpetuating timer chain would run forever without a limit.
	var tick func()
	tick = func() {
		count++
		s.After(time.Millisecond, tick)
	}
	s.After(time.Millisecond, tick)
	if n := s.Drain(100); n != 100 {
		t.Errorf("Drain(100) ran %d", n)
	}
	if count != 100 {
		t.Errorf("count = %d", count)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New(Epoch)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Step()
	if !ran || !s.Now().Equal(Epoch) {
		t.Errorf("negative delay: ran=%v now=%v", ran, s.Now())
	}
}

func TestStepsCounter(t *testing.T) {
	s := New(Epoch)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Drain(0)
	if s.Steps() != 5 {
		t.Errorf("Steps() = %d, want 5", s.Steps())
	}
	if s.Len() != 0 {
		t.Errorf("Len() = %d, want 0", s.Len())
	}
}
