// Package des implements the discrete-event scheduler that drives the
// virtual-time simulation substrate.
//
// The simulator regenerates the paper's figures: protocol code runs
// unmodified against a virtual clock, per-node CPU costs are charged from
// the calibrated cost tables, and the network model delays deliveries.
// Events with equal timestamps run in schedule order, so a run is fully
// deterministic given deterministic event handlers.
package des
