// Package netsim models the deployment's communication fabric: the
// reliable asynchronous LAN connecting the replica nodes and the fast
// reliable links connecting each process pair (Figure 1 of the paper).
//
// The same model serves both substrates: the discrete-event simulator asks
// it for per-message delivery delays and CPU costs, and the real-time
// runtime optionally injects its delays with timers. Links can be cut and
// healed and nodes counted against, which the fault-injection and
// message-complexity experiments use.
package netsim
