package netsim

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

func testTopo(t *testing.T) types.Topology {
	t.Helper()
	topo, err := types.NewTopology(types.SC, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestLinkParamsDelay(t *testing.T) {
	p := LinkParams{BaseDelay: 100 * time.Microsecond, BytesPerSec: 1_000_000}
	if got := p.Delay(0, nil); got != 100*time.Microsecond {
		t.Errorf("Delay(0) = %v", got)
	}
	// 1000 bytes at 1 MB/s = 1 ms transmission.
	if got := p.Delay(1000, nil); got != 100*time.Microsecond+time.Millisecond {
		t.Errorf("Delay(1000) = %v", got)
	}
	// Infinite bandwidth.
	p2 := LinkParams{BaseDelay: time.Millisecond}
	if got := p2.Delay(1<<20, nil); got != time.Millisecond {
		t.Errorf("Delay(inf bw) = %v", got)
	}
	// Jitter stays within [0, Jitter).
	p3 := LinkParams{BaseDelay: time.Millisecond, Jitter: 100 * time.Microsecond}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := p3.Delay(0, rng)
		if d < time.Millisecond || d >= time.Millisecond+100*time.Microsecond {
			t.Fatalf("jittered delay %v out of range", d)
		}
	}
}

func TestParamsCPUCosts(t *testing.T) {
	p := Params{SendCPUBase: 100, SendCPUPerKB: 1024, RecvCPUBase: 200, RecvCPUPerKB: 2048}
	if got := p.SendCost(1024); got != 100+1024 {
		t.Errorf("SendCost(1KiB) = %v", got)
	}
	if got := p.RecvCost(512); got != 200+1024 {
		t.Errorf("RecvCost(512B) = %v", got)
	}
}

func TestPairLinkClassification(t *testing.T) {
	topo := testTopo(t) // p1..p5 = 0..4, shadows p'1,p'2 = 5,6
	f := New(LANDefaults(), topo, 1)
	if !f.IsPairLink(0, 5) || !f.IsPairLink(5, 0) {
		t.Error("pair link {p1,p'1} not recognised")
	}
	if f.IsPairLink(0, 1) || f.IsPairLink(2, 5) || f.IsPairLink(2, 6) {
		t.Error("non-pair link misclassified as pair")
	}
	// Pair links are faster than LAN links for same size.
	dPair, ok1 := f.Delay(0, 5, 100)
	dLAN, ok2 := f.Delay(0, 1, 100)
	if !ok1 || !ok2 {
		t.Fatal("links unexpectedly cut")
	}
	if dPair >= dLAN+LANDefaults().LAN.Jitter {
		t.Errorf("pair link (%v) not faster than LAN (%v)", dPair, dLAN)
	}
}

func TestSelfDeliveryInstantaneous(t *testing.T) {
	f := New(LANDefaults(), testTopo(t), 1)
	d, ok := f.Delay(3, 3, 1<<20)
	if !ok || d != 0 {
		t.Errorf("self delay = %v, %v; want 0, true", d, ok)
	}
}

func TestCutAndHeal(t *testing.T) {
	f := New(LANDefaults(), testTopo(t), 1)
	f.Cut(1, 2)
	if _, ok := f.Delay(1, 2, 10); ok {
		t.Error("cut link 1->2 still delivers")
	}
	if _, ok := f.Delay(2, 1, 10); ok {
		t.Error("cut link 2->1 still delivers")
	}
	if _, ok := f.Delay(1, 3, 10); !ok {
		t.Error("unrelated link cut")
	}
	f.Heal(1, 2)
	if _, ok := f.Delay(1, 2, 10); !ok {
		t.Error("healed link does not deliver")
	}
}

func TestIsolateAndRejoin(t *testing.T) {
	f := New(LANDefaults(), testTopo(t), 1)
	f.Isolate(4)
	if _, ok := f.Delay(4, 0, 10); ok {
		t.Error("isolated node can send")
	}
	if _, ok := f.Delay(0, 4, 10); ok {
		t.Error("isolated node can receive")
	}
	// Self delivery is unaffected (process-internal).
	if _, ok := f.Delay(4, 4, 10); !ok {
		t.Error("isolation broke self-delivery")
	}
	f.Rejoin(4)
	if _, ok := f.Delay(4, 0, 10); !ok {
		t.Error("rejoined node cannot send")
	}
}

func TestCounters(t *testing.T) {
	f := New(LANDefaults(), testTopo(t), 1)
	f.Record(message.TOrderBatch, 1000)
	f.Record(message.TOrderBatch, 500)
	f.Record(message.TAck, 100)
	counts := f.CountsByType()
	if c := counts[message.TOrderBatch]; c.Messages != 2 || c.Bytes != 1500 {
		t.Errorf("OrderBatch counter = %+v", c)
	}
	if c := counts[message.TAck]; c.Messages != 1 || c.Bytes != 100 {
		t.Errorf("Ack counter = %+v", c)
	}
	if tot := f.Totals(); tot.Messages != 3 || tot.Bytes != 1600 {
		t.Errorf("Totals = %+v", tot)
	}
	out := f.FormatCounts()
	if !strings.Contains(out, "OrderBatch") || !strings.Contains(out, "Ack") {
		t.Errorf("FormatCounts output missing types:\n%s", out)
	}
	f.ResetCounters()
	if tot := f.Totals(); tot.Messages != 0 {
		t.Errorf("Totals after reset = %+v", tot)
	}
}

func TestClientLinksUseLAN(t *testing.T) {
	f := New(LANDefaults(), testTopo(t), 1)
	client := types.ClientID(0)
	d, ok := f.Delay(client, 0, 100)
	if !ok {
		t.Fatal("client link cut")
	}
	min := LANDefaults().LAN.BaseDelay
	if d < min {
		t.Errorf("client delay %v below LAN base %v", d, min)
	}
}

func TestDeterministicJitterStream(t *testing.T) {
	topo := testTopo(t)
	f1 := New(LANDefaults(), topo, 42)
	f2 := New(LANDefaults(), topo, 42)
	for i := 0; i < 50; i++ {
		d1, _ := f1.Delay(0, 1, i*10)
		d2, _ := f2.Delay(0, 1, i*10)
		if d1 != d2 {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, d1, d2)
		}
	}
}
