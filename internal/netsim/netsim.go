package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sof-repro/sof/internal/message"
	"github.com/sof-repro/sof/internal/types"
)

// LinkParams describes one class of link.
type LinkParams struct {
	// BaseDelay is the one-way propagation plus switching delay.
	BaseDelay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BytesPerSec is the link bandwidth for transmission delay
	// (size/BytesPerSec); zero means infinite bandwidth.
	BytesPerSec int64
}

// Delay returns the one-way delivery delay for a message of size bytes.
func (p LinkParams) Delay(size int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	if p.Jitter > 0 && rng != nil {
		d += time.Duration(rng.Int63n(int64(p.Jitter)))
	}
	if p.BytesPerSec > 0 {
		d += time.Duration(int64(time.Second) * int64(size) / p.BytesPerSec)
	}
	return d
}

// Params describes the whole fabric plus the per-message CPU cost model
// used by the simulator (the "2006 Java stack" part of the calibration; the
// cryptographic costs live in the crypto package).
type Params struct {
	// LAN is the asynchronous network between replica nodes and clients.
	LAN LinkParams
	// Pair is the fast reliable network between paired nodes.
	Pair LinkParams
	// SendCPUBase/SendCPUPerKB model the sender-side CPU cost of pushing
	// one message out (marshalling, syscalls, RMI/TCP stack).
	SendCPUBase  time.Duration
	SendCPUPerKB time.Duration
	// RecvCPUBase/RecvCPUPerKB model the receiver-side cost of accepting
	// and decoding one message before protocol handling.
	RecvCPUBase  time.Duration
	RecvCPUPerKB time.Duration
}

// SendCost returns the modelled sender CPU cost for size bytes.
func (p Params) SendCost(size int) time.Duration {
	return p.SendCPUBase + time.Duration(int64(p.SendCPUPerKB)*int64(size)/1024)
}

// RecvCost returns the modelled receiver CPU cost for size bytes.
func (p Params) RecvCost(size int) time.Duration {
	return p.RecvCPUBase + time.Duration(int64(p.RecvCPUPerKB)*int64(size)/1024)
}

// LANDefaults returns the calibrated model of the paper's testbed: a
// 100 Mbit switched LAN of 2.80 GHz Pentium IV nodes running a JDK 1.5
// protocol stack. The CPU constants are tuned so the CT baseline commits
// in ~10 ms at f=2 in steady state, the paper's reported figure.
func LANDefaults() Params {
	return Params{
		LAN: LinkParams{
			BaseDelay:   120 * time.Microsecond,
			Jitter:      30 * time.Microsecond,
			BytesPerSec: 12_500_000, // 100 Mbit/s
		},
		Pair: LinkParams{
			BaseDelay:   60 * time.Microsecond,
			Jitter:      15 * time.Microsecond,
			BytesPerSec: 12_500_000,
		},
		SendCPUBase:  380 * time.Microsecond,
		SendCPUPerKB: 320 * time.Microsecond,
		RecvCPUBase:  520 * time.Microsecond,
		RecvCPUPerKB: 320 * time.Microsecond,
	}
}

// WANDefaults returns a wide-area profile for shaped-TCP experiments:
// ~20 ms propagation with a few ms of jitter on inter-node links and a
// 10 MB/s bandwidth cap, with the intra-pair links kept metropolitan
// (the paper's pairs share a site). Use with harness
// Options{TCPShaping: true} to run WAN-profile experiments on the real
// TCP substrate.
func WANDefaults() Params {
	return Params{
		LAN: LinkParams{
			BaseDelay:   20 * time.Millisecond,
			Jitter:      3 * time.Millisecond,
			BytesPerSec: 10_000_000,
		},
		Pair: LinkParams{
			BaseDelay:   2 * time.Millisecond,
			Jitter:      500 * time.Microsecond,
			BytesPerSec: 12_500_000,
		},
		SendCPUBase:  380 * time.Microsecond,
		SendCPUPerKB: 320 * time.Microsecond,
		RecvCPUBase:  520 * time.Microsecond,
		RecvCPUPerKB: 320 * time.Microsecond,
	}
}

// MetroDefaults returns a metropolitan-area profile between LAN and WAN:
// a few ms of propagation between sites, sub-ms inside a pair's site.
// The scenario campaign sweeps LAN → metro → WAN with the same workload.
func MetroDefaults() Params {
	return Params{
		LAN: LinkParams{
			BaseDelay:   4 * time.Millisecond,
			Jitter:      800 * time.Microsecond,
			BytesPerSec: 12_500_000,
		},
		Pair: LinkParams{
			BaseDelay:   600 * time.Microsecond,
			Jitter:      150 * time.Microsecond,
			BytesPerSec: 12_500_000,
		},
		SendCPUBase:  380 * time.Microsecond,
		SendCPUPerKB: 320 * time.Microsecond,
		RecvCPUBase:  520 * time.Microsecond,
		RecvCPUPerKB: 320 * time.Microsecond,
	}
}

// ProfileNames lists the named link profiles in sweep order.
func ProfileNames() []string { return []string{"lan", "metro", "wan"} }

// Profile returns a named link profile: "lan", "metro" or "wan".
func Profile(name string) (Params, bool) {
	switch name {
	case "lan":
		return LANDefaults(), true
	case "metro":
		return MetroDefaults(), true
	case "wan":
		return WANDefaults(), true
	}
	return Params{}, false
}

// Fabric is the connectivity state: which links exist, which are cut, and
// traffic counters. It is safe for concurrent use (the live runtime sends
// from many goroutines).
type Fabric struct {
	params Params
	topo   types.Topology

	mu       sync.Mutex
	rng      *rand.Rand
	cut      map[[2]types.NodeID]bool
	isolated map[types.NodeID]bool
	counts   map[message.Type]*LinkCounter
	total    LinkCounter
}

// LinkCounter accumulates message and byte counts.
type LinkCounter struct {
	Messages int64
	Bytes    int64
}

// New returns a fabric for the topology with a deterministic jitter stream
// seeded by seed.
func New(params Params, topo types.Topology, seed int64) *Fabric {
	return &Fabric{
		params:   params,
		topo:     topo,
		rng:      rand.New(rand.NewSource(seed)),
		cut:      make(map[[2]types.NodeID]bool),
		isolated: make(map[types.NodeID]bool),
		counts:   make(map[message.Type]*LinkCounter),
	}
}

// Params returns the fabric's parameters.
func (f *Fabric) Params() Params { return f.params }

// IsPairLink reports whether from->to is an intra-pair fast link.
func (f *Fabric) IsPairLink(from, to types.NodeID) bool {
	p, ok := f.topo.PairOf(from)
	return ok && p == to
}

// Delay returns the delivery delay for a message of the given wire size
// and whether it is deliverable at all (false when the link is cut or an
// endpoint is isolated). Self-delivery is instantaneous and never cut.
func (f *Fabric) Delay(from, to types.NodeID, size int) (time.Duration, bool) {
	if from == to {
		return 0, true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut[linkKey(from, to)] || f.isolated[from] || f.isolated[to] {
		return 0, false
	}
	link := f.params.LAN
	if f.IsPairLink(from, to) {
		link = f.params.Pair
	}
	return link.Delay(size, f.rng), true
}

// Record counts one sent message; runtimes call it for every transmission
// that leaves a node (self-deliveries are not counted, matching how the
// paper counts messages "injected into the system").
func (f *Fabric) Record(t message.Type, size int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.counts[t]
	if c == nil {
		c = &LinkCounter{}
		f.counts[t] = c
	}
	c.Messages++
	c.Bytes += int64(size)
	f.total.Messages++
	f.total.Bytes += int64(size)
}

// Cut severs the bidirectional link between a and b.
func (f *Fabric) Cut(a, b types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut[linkKey(a, b)] = true
	f.cut[linkKey(b, a)] = true
}

// Heal restores the bidirectional link between a and b.
func (f *Fabric) Heal(a, b types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cut, linkKey(a, b))
	delete(f.cut, linkKey(b, a))
}

// Isolate disconnects every link of id (a network-level crash).
func (f *Fabric) Isolate(id types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.isolated[id] = true
}

// Rejoin reconnects a previously isolated node.
func (f *Fabric) Rejoin(id types.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.isolated, id)
}

// Totals returns the aggregate traffic counter.
func (f *Fabric) Totals() LinkCounter {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// CountsByType returns a copy of the per-message-type counters.
func (f *Fabric) CountsByType() map[message.Type]LinkCounter {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[message.Type]LinkCounter, len(f.counts))
	for t, c := range f.counts {
		out[t] = *c
	}
	return out
}

// ResetCounters zeroes the traffic counters (used between measurement
// warm-up and the measured window).
func (f *Fabric) ResetCounters() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts = make(map[message.Type]*LinkCounter)
	f.total = LinkCounter{}
}

// FormatCounts renders the per-type counters as a stable, sorted table.
func (f *Fabric) FormatCounts() string {
	counts := f.CountsByType()
	keys := make([]message.Type, 0, len(counts))
	for t := range counts {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, t := range keys {
		c := counts[t]
		fmt.Fprintf(&b, "%-14s %8d msgs %12d bytes\n", t, c.Messages, c.Bytes)
	}
	return b.String()
}

func linkKey(from, to types.NodeID) [2]types.NodeID { return [2]types.NodeID{from, to} }
